//! Cholesky factorization of symmetric positive definite matrices.
//!
//! GPR spends essentially all of its time here: fitting factors the noisy
//! kernel matrix `K_y = K + σ_n² I`, prediction and the log marginal
//! likelihood (paper Eqs. 3 and 8) are triangular solves plus a
//! log-determinant read off the factor's diagonal.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use al_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
/// let chol = Cholesky::new(&a).unwrap();
/// let x = chol.solve(&[1.0, 2.0]).unwrap();
/// // A·x reproduces the right-hand side.
/// let b = a.matvec(&x).unwrap();
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
/// assert!((chol.log_det() - 11f64.ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that had to be added to the diagonal for the factorization to
    /// succeed (0.0 when the matrix was well conditioned as given).
    jitter: f64,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive. Use [`Cholesky::with_jitter`] for kernel matrices
    /// that may be numerically semi-definite.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        Self::factor(a, 0.0)
    }

    /// Factor `A + jitter·I`, escalating `jitter` by factors of 10 from
    /// `initial_jitter` up to `max_jitter` until the factorization succeeds.
    ///
    /// This mirrors what GP libraries do when the RBF kernel makes nearby
    /// points numerically identical. The jitter actually used is recorded in
    /// [`Cholesky::jitter`].
    pub fn with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_jitter: f64,
    ) -> Result<Self, LinalgError> {
        if let Ok(c) = Self::factor(a, 0.0) {
            return Ok(c);
        }
        let mut jitter = initial_jitter.max(f64::MIN_POSITIVE);
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        while jitter <= max_jitter {
            match Self::factor(a, jitter) {
                Ok(c) => return Ok(c),
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    fn factor(a: &Matrix, jitter: f64) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        // Non-finite entries would factor into NaN pivots and surface as a
        // misleading NotPositiveDefinite; catch the real cause in debug.
        debug_assert!(
            a.as_slice().iter().all(|v| v.is_finite()),
            "Cholesky input contains non-finite entries"
        );
        debug_assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be finite and non-negative, got {jitter}"
        );
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal pivot.
            let mut d = a[(j, j)] + jitter;
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the pivot.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                // Rows i and j of L are contiguous; this inner product is
                // the hot loop of the whole factorization.
                let (ri, rj) = (i * n, j * n);
                let li = &l.as_slice()[ri..ri + j];
                let lj = &l.as_slice()[rj..rj + j];
                s -= crate::ops::dot(li, lj);
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Jitter added to the diagonal during factorization.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `L z = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_lower",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut z = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let s = crate::ops::dot(&row[..i], &z[..i]);
            z[i] = (z[i] - s) / row[i];
        }
        Ok(z)
    }

    /// Solve `Lᵀ x = b` (backward substitution).
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_upper",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solve the full system `A x = b` via the factor (`L Lᵀ x = b`).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let z = self.solve_lower(b)?;
        self.solve_upper(&z)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_matrix",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// `log |A| = 2 Σ log L_ii` — the model-complexity term of the paper's
    /// Eq. 8.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `bᵀ A⁻¹ b` computed stably as `‖L⁻¹ b‖²`.
    pub fn quad_form(&self, b: &[f64]) -> Result<f64, LinalgError> {
        let z = self.solve_lower(b)?;
        Ok(crate::ops::dot(&z, &z))
    }

    /// Explicit inverse `A⁻¹` (used by the LML gradient, which needs the
    /// full matrix `K⁻¹` once per gradient evaluation).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Reconstruct `L Lᵀ` (test helper; includes the jitter on the diagonal).
    pub fn reconstruct(&self) -> Result<Matrix, LinalgError> {
        let lt = self.l.transpose();
        self.l.matmul(&lt)
    }

    /// Extend the factorization of `A` to that of the bordered matrix
    /// `[[A, b], [bᵀ, c]]` in `O(n²)` — the incremental update that lets
    /// active learning grow its kernel matrix one acquired sample at a
    /// time instead of refactoring from scratch (`O(n³)`).
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when the bordered
    /// matrix is not SPD (callers should fall back to a fresh
    /// [`Cholesky::with_jitter`] factorization).
    pub fn extend(&mut self, b: &[f64], c: f64) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "extend",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // New bottom row: L w = b, pivot d = sqrt(c − ‖w‖²).
        let w = self.solve_lower(b)?;
        let d2 = c - crate::ops::dot(&w, &w);
        if d2 <= 0.0 || !d2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: n,
                value: d2,
            });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            let (src, dst) = (self.l.row(i), l.row_mut(i));
            dst[..n].copy_from_slice(src);
        }
        let last = l.row_mut(n);
        last[..n].copy_from_slice(&w);
        last[n] = d2.sqrt();
        self.l = l;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B is SPD by construction.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let r = ch.reconstruct().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-12, "entry ({i},{j})");
            }
        }
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_and_inverse() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let inv = ch.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - eye[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_matches_2x2_formula() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
        let ch = Cholesky::new(&a).unwrap();
        let det = 4.0 * 3.0 - 1.0;
        assert!((ch.log_det() - f64::ln(det)).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_direct() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let direct = crate::ops::dot(&b, &x);
        assert!((ch.quad_form(&b).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1: ones * onesᵀ, singular, needs jitter.
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let ch = Cholesky::with_jitter(&a, 1e-10, 1e-2).unwrap();
        assert!(ch.jitter() > 0.0);
        // Reconstruction equals A + jitter·I.
        let r = ch.reconstruct().unwrap();
        assert!((r[(0, 0)] - (1.0 + ch.jitter())).abs() < 1e-9);
        assert!((r[(0, 1)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_gives_up_past_max() {
        let a = Matrix::from_vec(2, 2, vec![-1.0, 0.0, 0.0, -1.0]);
        assert!(Cholesky::with_jitter(&a, 1e-10, 1e-6).is_err());
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
        assert!(ch.solve_lower(&[1.0]).is_err());
        assert!(ch.solve_upper(&[1.0]).is_err());
        assert!(ch.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn extend_matches_fresh_factorization() {
        let a = spd3();
        // Bordered matrix: append column b and diagonal c keeping SPD.
        let b = vec![0.5, -0.3, 0.8];
        let c = 7.0;
        let mut bordered = Matrix::zeros(4, 4);
        for i in 0..3 {
            for j in 0..3 {
                bordered[(i, j)] = a[(i, j)];
            }
            bordered[(i, 3)] = b[i];
            bordered[(3, i)] = b[i];
        }
        bordered[(3, 3)] = c;

        let mut incremental = Cholesky::new(&a).unwrap();
        incremental.extend(&b, c).unwrap();
        let fresh = Cholesky::new(&bordered).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (incremental.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-12,
                    "L({i},{j})"
                );
            }
        }
        assert!((incremental.log_det() - fresh.log_det()).abs() < 1e-12);
        // Solves agree too.
        let rhs = vec![1.0, 2.0, 3.0, 4.0];
        let xi = incremental.solve(&rhs).unwrap();
        let xf = fresh.solve(&rhs).unwrap();
        for (a, b) in xi.iter().zip(&xf) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn extend_rejects_non_spd_border() {
        let a = spd3();
        let mut ch = Cholesky::new(&a).unwrap();
        // c too small: bordered matrix loses positive definiteness.
        assert!(matches!(
            ch.extend(&[10.0, 10.0, 10.0], 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        // Wrong border length.
        let mut ch = Cholesky::new(&a).unwrap();
        assert!(matches!(
            ch.extend(&[1.0], 5.0),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn repeated_extension_grows_from_scalar() {
        // Build a 3x3 SPD factor one row at a time from a 1x1 seed.
        let a = spd3();
        let mut ch = Cholesky::new(&Matrix::from_vec(1, 1, vec![a[(0, 0)]])).unwrap();
        ch.extend(&[a[(0, 1)]], a[(1, 1)]).unwrap();
        ch.extend(&[a[(0, 2)], a[(1, 2)]], a[(2, 2)]).unwrap();
        let fresh = Cholesky::new(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((ch.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lower_and_upper_solves_are_consistent() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![0.5, 1.5, -1.0];
        let z = ch.solve_lower(&b).unwrap();
        // L z should reproduce b.
        let lz = ch.l().matvec(&z).unwrap();
        for (got, want) in lz.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12);
        }
        let x = ch.solve_upper(&b).unwrap();
        let ltx = ch.l().transpose().matvec(&x).unwrap();
        for (got, want) in ltx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12);
        }
    }
}
