//! Cholesky factorization of symmetric positive definite matrices.
//!
//! GPR spends essentially all of its time here: fitting factors the noisy
//! kernel matrix `K_y = K + σ_n² I`, prediction and the log marginal
//! likelihood (paper Eqs. 3 and 8) are triangular solves plus a
//! log-determinant read off the factor's diagonal.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use al_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
/// let chol = Cholesky::new(&a).unwrap();
/// let x = chol.solve(&[1.0, 2.0]).unwrap();
/// // A·x reproduces the right-hand side.
/// let b = a.matvec(&x).unwrap();
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
/// assert!((chol.log_det() - 11f64.ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that had to be added to the diagonal for the factorization to
    /// succeed (0.0 when the matrix was well conditioned as given).
    jitter: f64,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive. Use [`Cholesky::with_jitter`] for kernel matrices
    /// that may be numerically semi-definite.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        Self::factor(a, 0.0)
    }

    /// Factor `A + jitter·I`, escalating `jitter` by factors of 10 from
    /// `initial_jitter` up to `max_jitter` until the factorization succeeds.
    ///
    /// This mirrors what GP libraries do when the RBF kernel makes nearby
    /// points numerically identical. The jitter actually used is recorded in
    /// [`Cholesky::jitter`].
    pub fn with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_jitter: f64,
    ) -> Result<Self, LinalgError> {
        if let Ok(c) = Self::factor(a, 0.0) {
            return Ok(c);
        }
        let mut jitter = initial_jitter.max(f64::MIN_POSITIVE);
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        while jitter <= max_jitter {
            match Self::factor(a, jitter) {
                Ok(c) => return Ok(c),
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// Factor with the unblocked reference loop.
    ///
    /// This is the original textbook left-looking implementation. It is
    /// kept (a) as the oracle for the bitwise-parity tests pinning the
    /// blocked [`Cholesky::new`] path and (b) as the baseline body of the
    /// `cholesky_factor_naive` perf scenarios, so the committed BENCH
    /// trajectory can show the blocked/naive ratio on every machine.
    pub fn new_reference(a: &Matrix) -> Result<Self, LinalgError> {
        Self::factor_reference(a, 0.0)
    }

    fn factor_reference(a: &Matrix, jitter: f64) -> Result<Self, LinalgError> {
        Self::check_input(a, jitter)?;
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal pivot.
            let mut d = a[(j, j)] + jitter;
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the pivot.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                // Rows i and j of L are contiguous; this inner product is
                // the hot loop of the whole factorization.
                let (ri, rj) = (i * n, j * n);
                let li = &l.as_slice()[ri..ri + j];
                let lj = &l.as_slice()[rj..rj + j];
                s -= crate::ops::dot(li, lj);
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l, jitter })
    }

    fn check_input(a: &Matrix, jitter: f64) -> Result<(), LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        // Non-finite entries would factor into NaN pivots and surface as a
        // misleading NotPositiveDefinite; catch the real cause in debug.
        debug_assert!(
            a.as_slice().iter().all(|v| v.is_finite()),
            "Cholesky input contains non-finite entries"
        );
        debug_assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be finite and non-negative, got {jitter}"
        );
        Ok(())
    }

    /// Cache-tiled, panel-packed left-looking factorization, **bitwise
    /// identical** to [`Cholesky::new_reference`] (DESIGN §13).
    ///
    /// Why tiling is legal here: in the reference loop every element owns
    /// exactly one accumulator — the diagonal starts at `a(j,j) + jitter`
    /// and subtracts `L(j,k)²` term by term in ascending `k`; an
    /// off-diagonal subtracts one sequential ascending-`k` dot product
    /// (itself a fold from 0.0) from `a(i,j)` in a single operation. The
    /// blocked code keeps those exact accumulation sequences — panel `acc`
    /// slots start at 0.0 and receive products in ascending `k` across
    /// panel boundaries, diagonals subtract term by term — and only
    /// regroups *which loop iteration* performs each add, never the adds
    /// themselves. What it buys: the panel of already-final columns is
    /// packed transposed so the inner kernel is a contiguous vectorizable
    /// multi-accumulator AXPY instead of a strided latency-bound chain,
    /// and each `L` row is streamed once per (column-panel, k-panel) pair
    /// instead of once per column.
    fn factor(a: &Matrix, jitter: f64) -> Result<Self, LinalgError> {
        Self::check_input(a, jitter)?;
        let n = a.rows();
        // Panel width (columns factored together) and k-panel depth (how
        // much history is packed per pass). Schedule-only knobs: any values
        // produce identical bits; these keep the pack (NB·KB doubles) and
        // one history row segment inside L1/L2.
        const NB: usize = 64;
        const KB: usize = 128;
        // Small matrices fit in cache whole and the session hot path
        // factors them by the hundreds; the panel buffers would cost more
        // than the O(n³) work. Same bits either way (the parity tests
        // cover n ≤ NB), so dispatch on size freely.
        if n <= NB {
            return Self::factor_reference(a, jitter);
        }
        let mut l = Matrix::zeros(n, n);
        let nb_cap = NB.min(n.max(1));
        // acc[(i − jb)·nb + jj] accumulates Σ_k L(i,k)·L(j,k) for column
        // j = jb + jj, ascending k, starting from 0.0 — the same fold the
        // reference dot performs.
        let mut acc = vec![0.0f64; n * nb_cap];
        // dacc[jj] is the diagonal accumulator: a(j,j) + jitter minus
        // L(j,k)² term by term, ascending k.
        let mut dacc = vec![0.0f64; nb_cap];
        // Transposed pack of the panel rows over one k-panel:
        // pack[kk·nb + jj] = L(jb + jj, kb + kk).
        let mut pack = vec![0.0f64; nb_cap * KB];
        // Fresh in-panel column cache for the right-looking update.
        let mut colv = vec![0.0f64; nb_cap];

        let mut jb = 0;
        while jb < n {
            let je = (jb + NB).min(n);
            let nb = je - jb;
            let span = n - jb;
            acc[..span * nb].fill(0.0);
            for (jj, d) in dacc[..nb].iter_mut().enumerate() {
                *d = a[(jb + jj, jb + jj)] + jitter;
            }

            // Phase A: fold the already-final history columns k < jb into
            // the panel accumulators, one k-panel at a time.
            let mut kb = 0;
            while kb < jb {
                let ke = (kb + KB).min(jb);
                let klen = ke - kb;
                for jj in 0..nb {
                    let row = &l.as_slice()[(jb + jj) * n + kb..(jb + jj) * n + ke];
                    for (kk, &v) in row.iter().enumerate() {
                        pack[kk * nb + jj] = v;
                    }
                }
                for (jj, d) in dacc[..nb].iter_mut().enumerate() {
                    for kk in 0..klen {
                        let v = pack[kk * nb + jj];
                        *d -= v * v;
                    }
                }
                for i in (jb + 1)..n {
                    // Rows inside the panel only feed columns j < i; the
                    // unused high slots are never read.
                    let jjmax = nb.min(i - jb);
                    let li = &l.as_slice()[i * n + kb..i * n + ke];
                    let arow = &mut acc[(i - jb) * nb..(i - jb) * nb + jjmax];
                    for (kk, &lik) in li.iter().enumerate() {
                        let prow = &pack[kk * nb..kk * nb + jjmax];
                        for (av, pv) in arow.iter_mut().zip(prow) {
                            *av += lik * *pv;
                        }
                    }
                }
                kb = ke;
            }

            // Phase B: factor the panel columns left to right, folding each
            // fresh column into the remaining panel accumulators (k = j,
            // still ascending) before moving on.
            for jj in 0..nb {
                let j = jb + jj;
                let d = dacc[jj];
                if d <= 0.0 || !d.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
                }
                let dj = d.sqrt();
                l[(j, j)] = dj;
                for i in (j + 1)..n {
                    let s = a[(i, j)] - acc[(i - jb) * nb + jj];
                    l[(i, j)] = s / dj;
                }
                for jj2 in (jj + 1)..nb {
                    colv[jj2] = l[(jb + jj2, j)];
                }
                for (jj2, d) in dacc.iter_mut().enumerate().take(nb).skip(jj + 1) {
                    let v = colv[jj2];
                    *d -= v * v;
                }
                for i in (j + 1)..n {
                    let jjmax = nb.min(i - jb);
                    if jjmax <= jj + 1 {
                        continue;
                    }
                    let lij = l[(i, j)];
                    let arow = &mut acc[(i - jb) * nb + jj + 1..(i - jb) * nb + jjmax];
                    for (av, cv) in arow.iter_mut().zip(&colv[jj + 1..jjmax]) {
                        *av += lij * *cv;
                    }
                }
            }
            jb = je;
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Jitter added to the diagonal during factorization.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `L z = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_lower",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut z = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let s = crate::ops::dot(&row[..i], &z[..i]);
            z[i] = (z[i] - s) / row[i];
        }
        Ok(z)
    }

    /// Solve `Lᵀ x = b` (backward substitution).
    ///
    /// `Lᵀ`'s rows are `L`'s columns, so the textbook loop walks `L` with
    /// stride `n` and misses cache on every term. This version processes
    /// rows in descending blocks and packs the below-block panel of `L`
    /// transposed via row-contiguous reads, so the long inner products run
    /// over contiguous memory. Each subtraction `s -= L(k,i)·x[k]` still
    /// happens in ascending `k` per row `i`, so the result is bitwise
    /// identical to the reference loop (pinned by a parity test).
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_upper",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        const SB: usize = 64;
        let ld = self.l.as_slice();
        let mut x = b.to_vec();
        let mut panel = vec![0.0f64; SB * n.saturating_sub(SB)];
        let nblocks = n.div_ceil(SB);
        for blk in (0..nblocks).rev() {
            let ib = blk * SB;
            let ie = (ib + SB).min(n);
            let tail = n - ie;
            // panel[(i − ib)·tail + (k − ie)] = L(k, i), filled by streaming
            // the below-block rows of L once, contiguously.
            for k in ie..n {
                let lrow = &ld[k * n + ib..k * n + ie];
                for (ii, &v) in lrow.iter().enumerate() {
                    panel[ii * tail + (k - ie)] = v;
                }
            }
            for i in (ib..ie).rev() {
                let mut s = x[i];
                // Within-block terms: a short column walk that stays in
                // cache (at most SB rows tall).
                for k in (i + 1)..ie {
                    s -= ld[k * n + i] * x[k];
                }
                // Below-block terms from the packed contiguous panel row.
                let prow = &panel[(i - ib) * tail..(i - ib) * tail + tail];
                for (pv, xv) in prow.iter().zip(&x[ie..]) {
                    s -= pv * xv;
                }
                x[i] = s / ld[i * n + i];
            }
        }
        Ok(x)
    }

    /// Solve the full system `A x = b` via the factor (`L Lᵀ x = b`).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let z = self.solve_lower(b)?;
        self.solve_upper(&z)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_matrix",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// `log |A| = 2 Σ log L_ii` — the model-complexity term of the paper's
    /// Eq. 8.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `bᵀ A⁻¹ b` computed stably as `‖L⁻¹ b‖²`.
    pub fn quad_form(&self, b: &[f64]) -> Result<f64, LinalgError> {
        let z = self.solve_lower(b)?;
        Ok(crate::ops::dot(&z, &z))
    }

    /// Explicit inverse `A⁻¹` (used by the LML gradient, which needs the
    /// full matrix `K⁻¹` once per gradient evaluation).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Reconstruct `L Lᵀ` (test helper; includes the jitter on the diagonal).
    pub fn reconstruct(&self) -> Result<Matrix, LinalgError> {
        let lt = self.l.transpose();
        self.l.matmul(&lt)
    }

    /// Extend the factorization of `A` to that of the bordered matrix
    /// `[[A, b], [bᵀ, c]]` in `O(n²)` — the incremental update that lets
    /// active learning grow its kernel matrix one acquired sample at a
    /// time instead of refactoring from scratch (`O(n³)`).
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when the bordered
    /// matrix is not SPD (callers should fall back to a fresh
    /// [`Cholesky::with_jitter`] factorization).
    pub fn extend(&mut self, b: &[f64], c: f64) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "extend",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // New bottom row: L w = b, pivot d = sqrt(c − ‖w‖²).
        let w = self.solve_lower(b)?;
        let d2 = c - crate::ops::dot(&w, &w);
        if d2 <= 0.0 || !d2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: n,
                value: d2,
            });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            let (src, dst) = (self.l.row(i), l.row_mut(i));
            dst[..n].copy_from_slice(src);
        }
        let last = l.row_mut(n);
        last[..n].copy_from_slice(&w);
        last[n] = d2.sqrt();
        self.l = l;
        Ok(())
    }

    /// Remove row and column `index` from the factored matrix in `O(n²)` —
    /// the inverse of [`Cholesky::extend`], letting active learning evict
    /// a sample from its kernel matrix without an `O(n³)` refactorization.
    ///
    /// Write `L` partitioned around row `index` as
    /// `[[L₁₁, 0, 0], [lᵀ, d, 0], [L₃₁, c, S]]`. Deleting row/column
    /// `index` of `A = L Lᵀ` leaves the leading rows `L₁₁`, `L₃₁`
    /// untouched, while the trailing block becomes
    /// `L₃₁ L₃₁ᵀ + S Sᵀ + c cᵀ` — so the new trailing factor `L̃` must
    /// satisfy `L̃ L̃ᵀ = S Sᵀ + c cᵀ`, an *additive* rank-1 update of `S`
    /// with the deleted subdiagonal column `c` as carrier. That update is
    /// computed with the standard Givens-style recurrence, which is
    /// unconditionally stable (every rotation grows the diagonal).
    /// Removing the last row (`index == n − 1`) is a pure truncation and
    /// round-trips [`Cholesky::extend`] bitwise. The jitter recorded at
    /// factorization time is preserved: the result factors the same
    /// `A + jitter·I` with one row/column deleted.
    pub fn downdate(&mut self, index: usize) -> Result<(), LinalgError> {
        let n = self.dim();
        if index >= n {
            return Err(LinalgError::ShapeMismatch {
                op: "downdate",
                lhs: (n, n),
                rhs: (index, 1),
            });
        }
        let m = n - index - 1;
        // Carrier: the deleted column below its pivot.
        let mut x: Vec<f64> = (0..m).map(|t| self.l[(index + 1 + t, index)]).collect();
        // Copy L minus row/column `index`.
        let mut l = Matrix::zeros(n - 1, n - 1);
        for i in 0..index {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        for i in (index + 1)..n {
            let src = self.l.row(i);
            let dst = l.row_mut(i - 1);
            dst[..index].copy_from_slice(&src[..index]);
            dst[index..i].copy_from_slice(&src[index + 1..=i]);
        }
        // Rank-1 update of the trailing block: L̃ L̃ᵀ = S Sᵀ + x xᵀ.
        for k in 0..m {
            let r = index + k;
            let lkk = l[(r, r)];
            let xk = x[k];
            let h = (lkk * lkk + xk * xk).sqrt();
            if h <= 0.0 || !h.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: r, value: h });
            }
            let c = h / lkk;
            let s = xk / lkk;
            l[(r, r)] = h;
            for (off, xi) in x[k + 1..m].iter_mut().enumerate() {
                let ri = index + k + 1 + off;
                let v = (l[(ri, r)] + s * *xi) / c;
                *xi = c * *xi - s * v;
                l[(ri, r)] = v;
            }
        }
        self.l = l;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B is SPD by construction.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let r = ch.reconstruct().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-12, "entry ({i},{j})");
            }
        }
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_and_inverse() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let inv = ch.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - eye[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_matches_2x2_formula() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
        let ch = Cholesky::new(&a).unwrap();
        let det = 4.0 * 3.0 - 1.0;
        assert!((ch.log_det() - f64::ln(det)).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_direct() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let direct = crate::ops::dot(&b, &x);
        assert!((ch.quad_form(&b).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1: ones * onesᵀ, singular, needs jitter.
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let ch = Cholesky::with_jitter(&a, 1e-10, 1e-2).unwrap();
        assert!(ch.jitter() > 0.0);
        // Reconstruction equals A + jitter·I.
        let r = ch.reconstruct().unwrap();
        assert!((r[(0, 0)] - (1.0 + ch.jitter())).abs() < 1e-9);
        assert!((r[(0, 1)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_gives_up_past_max() {
        let a = Matrix::from_vec(2, 2, vec![-1.0, 0.0, 0.0, -1.0]);
        assert!(Cholesky::with_jitter(&a, 1e-10, 1e-6).is_err());
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
        assert!(ch.solve_lower(&[1.0]).is_err());
        assert!(ch.solve_upper(&[1.0]).is_err());
        assert!(ch.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn extend_matches_fresh_factorization() {
        let a = spd3();
        // Bordered matrix: append column b and diagonal c keeping SPD.
        let b = vec![0.5, -0.3, 0.8];
        let c = 7.0;
        let mut bordered = Matrix::zeros(4, 4);
        for i in 0..3 {
            for j in 0..3 {
                bordered[(i, j)] = a[(i, j)];
            }
            bordered[(i, 3)] = b[i];
            bordered[(3, i)] = b[i];
        }
        bordered[(3, 3)] = c;

        let mut incremental = Cholesky::new(&a).unwrap();
        incremental.extend(&b, c).unwrap();
        let fresh = Cholesky::new(&bordered).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (incremental.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-12,
                    "L({i},{j})"
                );
            }
        }
        assert!((incremental.log_det() - fresh.log_det()).abs() < 1e-12);
        // Solves agree too.
        let rhs = vec![1.0, 2.0, 3.0, 4.0];
        let xi = incremental.solve(&rhs).unwrap();
        let xf = fresh.solve(&rhs).unwrap();
        for (a, b) in xi.iter().zip(&xf) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn extend_rejects_non_spd_border() {
        let a = spd3();
        let mut ch = Cholesky::new(&a).unwrap();
        // c too small: bordered matrix loses positive definiteness.
        assert!(matches!(
            ch.extend(&[10.0, 10.0, 10.0], 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        // Wrong border length.
        let mut ch = Cholesky::new(&a).unwrap();
        assert!(matches!(
            ch.extend(&[1.0], 5.0),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn repeated_extension_grows_from_scalar() {
        // Build a 3x3 SPD factor one row at a time from a 1x1 seed.
        let a = spd3();
        let mut ch = Cholesky::new(&Matrix::from_vec(1, 1, vec![a[(0, 0)]])).unwrap();
        ch.extend(&[a[(0, 1)]], a[(1, 1)]).unwrap();
        ch.extend(&[a[(0, 2)], a[(1, 2)]], a[(2, 2)]).unwrap();
        let fresh = Cholesky::new(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((ch.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lower_and_upper_solves_are_consistent() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![0.5, 1.5, -1.0];
        let z = ch.solve_lower(&b).unwrap();
        // L z should reproduce b.
        let lz = ch.l().matvec(&z).unwrap();
        for (got, want) in lz.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12);
        }
        let x = ch.solve_upper(&b).unwrap();
        let ltx = ch.l().transpose().matvec(&x).unwrap();
        for (got, want) in ltx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    /// Deterministic dense SPD matrix: `B Bᵀ + n·I` for a sin-sequence `B`.
    fn spd_random(n: usize, seed: u64) -> Matrix {
        let data: Vec<f64> = (0..n * n)
            .map(|i| ((i as f64) * 0.37 + seed as f64 * 1.7).sin())
            .collect();
        let b = Matrix::from_vec(n, n, data);
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn assert_factors_bitwise_equal(blocked: &Cholesky, reference: &Cholesky) {
        assert_eq!(blocked.dim(), reference.dim());
        for i in 0..blocked.dim() {
            for j in 0..blocked.dim() {
                assert_eq!(
                    blocked.l()[(i, j)].to_bits(),
                    reference.l()[(i, j)].to_bits(),
                    "L({i},{j}) diverges: blocked {} vs reference {}",
                    blocked.l()[(i, j)],
                    reference.l()[(i, j)],
                );
            }
        }
    }

    #[test]
    fn blocked_factor_matches_reference_bitwise() {
        // Sizes straddle every tiling boundary: sub-panel, exactly one
        // panel (64), one panel plus a remainder, more than one k-panel
        // of history (> 128 + 64).
        for &n in &[1usize, 2, 3, 5, 17, 63, 64, 65, 130, 200] {
            let a = spd_random(n, n as u64);
            let blocked = Cholesky::new(&a).unwrap();
            let reference = Cholesky::new_reference(&a).unwrap();
            assert_factors_bitwise_equal(&blocked, &reference);
        }
    }

    #[test]
    fn blocked_factor_with_jitter_matches_reference_bitwise() {
        // Rank-5 Gram matrix: singular, so with_jitter must escalate.
        let n = 90;
        let data: Vec<f64> = (0..n * 5)
            .map(|i| ((i as f64) * 0.43 + 0.2).sin())
            .collect();
        let b = Matrix::from_vec(n, 5, data);
        let a = b.matmul(&b.transpose()).unwrap();
        let blocked = Cholesky::with_jitter(&a, 1e-10, 1e-2).unwrap();
        let reference = Cholesky::factor_reference(&a, blocked.jitter()).unwrap();
        assert!(blocked.jitter() > 0.0);
        assert_factors_bitwise_equal(&blocked, &reference);
    }

    #[test]
    fn blocked_factor_error_matches_reference_bitwise() {
        // Break definiteness past the first panel so the failure exercises
        // the phase-A history path before pivoting.
        let n = 130;
        let mut a = spd_random(n, 3);
        a[(97, 97)] = -500.0;
        let blocked = Cholesky::new(&a);
        let reference = Cholesky::new_reference(&a);
        match (blocked, reference) {
            (
                Err(LinalgError::NotPositiveDefinite {
                    pivot: pb,
                    value: vb,
                }),
                Err(LinalgError::NotPositiveDefinite {
                    pivot: pr,
                    value: vr,
                }),
            ) => {
                assert_eq!(pb, pr);
                assert_eq!(vb.to_bits(), vr.to_bits());
            }
            other => panic!("expected matching NotPositiveDefinite errors, got {other:?}"),
        }
    }

    #[test]
    fn solve_upper_matches_reference_bitwise() {
        // The pre-blocking backward substitution, verbatim.
        fn solve_upper_reference(ch: &Cholesky, b: &[f64]) -> Vec<f64> {
            let n = ch.dim();
            let mut x = b.to_vec();
            for i in (0..n).rev() {
                let mut s = x[i];
                for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                    s -= ch.l()[(k, i)] * xk;
                }
                x[i] = s / ch.l()[(i, i)];
            }
            x
        }
        for &n in &[1usize, 5, 63, 64, 65, 130, 200] {
            let a = spd_random(n, 11 + n as u64);
            let ch = Cholesky::new(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.9 - 1.0).cos()).collect();
            let fast = ch.solve_upper(&b).unwrap();
            let slow = solve_upper_reference(&ch, &b);
            for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(f.to_bits(), s.to_bits(), "x[{i}] diverges at n={n}");
            }
        }
    }

    fn delete_row_col(a: &Matrix, index: usize) -> Matrix {
        let n = a.rows();
        let mut out = Matrix::zeros(n - 1, n - 1);
        for i in 0..n - 1 {
            for j in 0..n - 1 {
                let si = if i < index { i } else { i + 1 };
                let sj = if j < index { j } else { j + 1 };
                out[(i, j)] = a[(si, sj)];
            }
        }
        out
    }

    #[test]
    fn downdate_last_row_roundtrips_extend_bitwise() {
        let a = spd_random(12, 5);
        let before = Cholesky::new(&a).unwrap();
        let mut ch = before.clone();
        let b: Vec<f64> = (0..12).map(|i| 0.1 * (i as f64 + 1.0)).collect();
        ch.extend(&b, 30.0).unwrap();
        ch.downdate(12).unwrap();
        assert_factors_bitwise_equal(&ch, &before);
    }

    #[test]
    fn downdate_interior_matches_fresh_factorization() {
        for &(n, index) in &[(6usize, 0usize), (9, 4), (40, 17), (70, 66)] {
            let a = spd_random(n, n as u64 + index as u64);
            let mut ch = Cholesky::new(&a).unwrap();
            ch.downdate(index).unwrap();
            let fresh = Cholesky::new(&delete_row_col(&a, index)).unwrap();
            for i in 0..n - 1 {
                for j in 0..n - 1 {
                    assert!(
                        (ch.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-8,
                        "L({i},{j}) after removing {index} from n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn downdate_preserves_jitter() {
        // Semidefinite: ones * onesᵀ needs jitter to factor.
        let a = Matrix::from_vec(3, 3, vec![1.0; 9]);
        let mut ch = Cholesky::with_jitter(&a, 1e-10, 1e-2).unwrap();
        let jitter = ch.jitter();
        assert!(jitter > 0.0);
        ch.downdate(1).unwrap();
        assert_eq!(ch.jitter(), jitter);
        // The result factors the 2x2 submatrix of A + jitter·I.
        let r = ch.reconstruct().unwrap();
        assert!((r[(0, 0)] - (1.0 + jitter)).abs() < 1e-9);
        assert!((r[(0, 1)] - 1.0).abs() < 1e-9);
        assert!((r[(1, 1)] - (1.0 + jitter)).abs() < 1e-9);
    }

    #[test]
    fn downdate_handles_edges() {
        // Shrinking to the empty factor is allowed.
        let mut ch = Cholesky::new(&Matrix::from_vec(1, 1, vec![4.0])).unwrap();
        ch.downdate(0).unwrap();
        assert_eq!(ch.dim(), 0);
        // Out-of-range index is a shape error.
        let mut ch = Cholesky::new(&spd3()).unwrap();
        assert!(matches!(
            ch.downdate(3),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
