//! Error type shared by the linear-algebra routines.

use std::fmt;

/// Errors produced by dense linear-algebra operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. `m×n · p×q` with `n != p`).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix expected to be symmetric positive definite was not, even
    /// after the maximum jitter was added to its diagonal.
    NotPositiveDefinite {
        /// Index of the pivot where factorization broke down.
        pivot: usize,
        /// Value found at the failing pivot.
        value: f64,
    },
    /// An operation requiring a square matrix received a rectangular one.
    NotSquare {
        /// Actual shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// An operation received an empty matrix or vector where data is required.
    Empty(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} = {value}"
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Empty(what) => write!(f, "{what} must be non-empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));

        let e = LinalgError::NotPositiveDefinite {
            pivot: 1,
            value: -0.5,
        };
        assert!(e.to_string().contains("positive definite"));

        let e = LinalgError::NotSquare { shape: (3, 4) };
        assert!(e.to_string().contains("3x4"));

        let e = LinalgError::Empty("vector");
        assert!(e.to_string().contains("vector"));
    }
}
