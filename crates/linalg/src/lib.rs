// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Dense linear algebra and statistics substrate for the active-learning stack.
//!
//! This crate deliberately hand-rolls the small amount of numerical machinery
//! that Gaussian process regression needs — dense matrices, Cholesky
//! factorization of symmetric positive definite systems, triangular solves,
//! log-determinants — plus the descriptive statistics and random sampling
//! helpers used by the dataset pipeline and the experiment harness.
//!
//! Everything is `f64`; the matrices involved in GPR over a few hundred
//! training points are small enough that cache-blocking or SIMD dispatch
//! would be premature. The hot kernels (`Matrix::matmul`, [`Cholesky`])
//! are written as straightforward loops over contiguous row-major storage so
//! the compiler can vectorize them.

pub mod cholesky;
pub mod error;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
