//! Dense row-major `f64` matrix.

use crate::error::LinalgError;

/// Dense matrix with row-major contiguous storage.
///
/// Indexing is `(row, col)` via the `Index`/`IndexMut` operators. Rows can be
/// borrowed as slices with [`Matrix::row`], which is the access pattern the
/// GP kernels rely on (each training point is a row).
///
/// # Examples
///
/// ```
/// use al_linalg::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.row(0), &[1.0, 2.0]);
/// let b = a.matmul(&Matrix::identity(2)).unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from row-major data. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from a slice of equally sized rows.
    ///
    /// Returns an error when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty("row list"));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage (e.g. to split it
    /// into disjoint row bands for parallel fills).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning the row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of both `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // Exact-zero sparsity skip: only a true +0.0/-0.0 may skip
                // the row product, so an epsilon compare would be wrong.
                #[allow(clippy::float_cmp)] // alint: allow(L2)
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for j in 0..rrow.len() {
                    orow[j] += a * rrow[j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::ops::dot(self.row(i), v))
            .collect())
    }

    /// Append the rows of `other` below `self`. Column counts must match.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Select a subset of rows (in the given order) into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Select a subset of rows into `out`, reusing its allocation.
    ///
    /// `out` is resized/reshaped to `indices.len() × self.cols`; existing
    /// contents are overwritten. Lets batch-prediction loops reuse one
    /// scratch matrix across calls instead of allocating per bucket.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Remove row `i`, shifting later rows up.
    pub fn remove_row(&mut self, i: usize) {
        assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        let start = i * self.cols;
        self.data.drain(start..start + self.cols);
        self.rows -= 1;
    }

    /// `true` when the matrix is symmetric to within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Add `value` to every diagonal entry (in place). Requires square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert_eq!(
            self.rows, self.cols,
            "add_diagonal requires a square matrix"
        );
        for i in 0..self.rows {
            self[(i, i)] += value;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_validates_lengths() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok[(1, 0)], 3.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v = vec![5.0, 6.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![17.0, 39.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.vstack(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn select_and_remove_rows() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);

        let mut m = m;
        m.remove_row(1);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[5.0, 6.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 3.0]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.5, 3.0]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn frobenius_norm_matches() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn col_extracts_column() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }
}
