//! Small vector kernels used across the stack.

/// Dot product of two equally long slices.
///
/// Panics in debug builds when lengths differ; in release the shorter length
/// wins, so callers must uphold the invariant (all call sites pass rows of
/// the same matrix or vectors validated upstream).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Weighted squared distance `sum_k w[k] * (a[k]-b[k])^2` (for ARD kernels,
/// `w[k] = 1/l_k^2`).
#[inline]
pub fn weighted_sq_dist(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    a.iter()
        .zip(b)
        .zip(w)
        .map(|((x, y), wk)| {
            let d = x - y;
            wk * d * d
        })
        .sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b` into a new vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Index of the maximum element; ties resolve to the lowest index.
/// Returns `None` for empty input or when all elements are NaN.
pub fn argmax(v: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if x <= bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element; ties resolve to the lowest index.
/// Returns `None` for empty input or when all elements are NaN.
pub fn argmin(v: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if x >= bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn weighted_sq_dist_reduces_to_plain_with_unit_weights() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.5];
        let w = [1.0, 1.0, 1.0];
        assert!((weighted_sq_dist(&a, &b, &w) - sq_dist(&a, &b)).abs() < 1e-12);
        // Zero weight masks a coordinate entirely.
        assert_eq!(weighted_sq_dist(&[0.0], &[9.0], &[0.0]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn argmax_argmin_handle_ties_and_nans() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, -3.0, -3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0, f64::NAN]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(argmin(&[f64::NAN, 5.0]), Some(1));
    }
}
