//! Random sampling helpers.
//!
//! The `rand` crate supplies uniform generation; the distributions the stack
//! needs on top of it (Gaussian noise for the machine model, log-normal
//! run-to-run variability, weighted discrete draws for the RandGoodness
//! strategy) are implemented here so no extra dependency is required.

use rand::{Rng, RngExt};

/// Draw one standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw `N(mean, std²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Draw a log-normal variate: `exp(N(mu, sigma²))`.
///
/// `mu`/`sigma` are the parameters of the underlying normal, i.e. the
/// distribution of the logarithm.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Multiplicative noise factor with a given coefficient of variation-ish
/// spread: `exp(N(0, sigma²))`. With small `sigma` this is `≈ 1 ± sigma`.
pub fn noise_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    log_normal(rng, 0.0, sigma)
}

/// Draw an index from the discrete distribution defined by non-negative
/// `weights` (need not be normalized). Returns `None` when the weights are
/// empty or sum to zero / non-finite.
///
/// This is the randomized draw at the heart of the RandGoodness and RGMA
/// strategies (paper Algorithm 2, line 5).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if weights.is_empty() || total <= 0.0 || !total.is_finite() {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        last_positive = Some(i);
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point slack: fall back to the last positive-weight index.
    last_positive
}

/// Fisher–Yates shuffle of `0..n`, returning the permutation.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let m = crate::stats::mean(&samples);
        let s = crate::stats::std_dev(&samples);
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((s - 1.0).abs() < 0.03, "std {s}");
    }

    #[test]
    fn normal_is_affine_in_parameters() {
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        assert!((crate::stats::mean(&samples) - 5.0).abs() < 0.06);
        assert!((crate::stats::std_dev(&samples) - 2.0).abs() < 0.06);
    }

    #[test]
    fn log_normal_is_positive_and_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| log_normal(&mut rng, 0.0, 0.1))
            .collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let logs: Vec<f64> = samples.iter().map(|x| x.ln()).collect();
        assert!(crate::stats::mean(&logs).abs() < 0.01);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(10);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(weighted_index(&mut rng, &[]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut rng, &[f64::INFINITY]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, 2.5]), Some(1));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(12);
        let p = permutation(&mut rng, 100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_trivial_sizes() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(permutation(&mut rng, 0).is_empty());
        assert_eq!(permutation(&mut rng, 1), vec![0]);
    }
}
