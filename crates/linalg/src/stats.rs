//! Descriptive statistics used for dataset summaries (paper Table I) and for
//! the violin/quartile views of Fig. 2.

/// Arithmetic mean. Returns `NaN` for empty input.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Sample variance (divides by `n-1`). Returns `NaN` when `n < 2`.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return f64::NAN;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Quantile with linear interpolation between closest ranks
/// (the "linear" method used by NumPy/R type 7). `q` in `[0, 1]`.
/// Returns `NaN` for empty input.
pub fn quantile(v: &[f64], q: f64) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = v.to_vec();
    // total_cmp orders NaNs to the end instead of panicking on them; a
    // NaN-polluted input yields a NaN-adjacent quantile the caller can see.
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
pub fn median(v: &[f64]) -> f64 {
    quantile(v, 0.5)
}

/// Minimum. Returns `NaN` for empty input.
pub fn min(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum. Returns `NaN` for empty input.
pub fn max(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::NAN, f64::max)
}

/// Five-number summary plus mean — one row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Compute the summary of a (non-empty) sample.
    pub fn of(v: &[f64]) -> Summary {
        Summary {
            min: min(v),
            q1: quantile(v, 0.25),
            median: median(v),
            mean: mean(v),
            q3: quantile(v, 0.75),
            max: max(v),
        }
    }

    /// Interquartile range `q3 - q1` (the thick bar of a violin plot).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Root-mean-square of a vector of errors: `sqrt(Σ e_i² / n)`
/// (paper Eq. 10 with `e` already formed).
pub fn rms(errors: &[f64]) -> f64 {
    if errors.is_empty() {
        return f64::NAN;
    }
    (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt()
}

/// Weighted root-mean-square `sqrt(Σ ρ_i e_i²)` with `Σ ρ_i = 1` expected
/// (paper Eq. 12's diagonal weighting).
pub fn weighted_rms(errors: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(errors.len(), weights.len());
    if errors.is_empty() {
        return f64::NAN;
    }
    errors
        .iter()
        .zip(weights)
        .map(|(e, w)| w * e * e)
        .sum::<f64>()
        .sqrt()
}

/// Histogram with equal-width bins over `[lo, hi]`; values outside clamp to
/// the edge bins. Used to print textual violin shapes for Fig. 2.
///
/// Bins are half-open `[edge, edge + width)` except the last, which the
/// clamp closes: a value exactly at `hi` — in particular the series max
/// when callers pass `hi = max` — is counted in the final bin, never
/// dropped. `counts.iter().sum() == v.len()` always holds.
pub fn histogram(v: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in v {
        let b = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[3.0, -1.0, 2.0]), -1.0);
        assert_eq!(max(&[3.0, -1.0, 2.0]), 3.0);
        assert!(min(&[]).is_nan());
    }

    #[test]
    fn summary_and_iqr() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&v);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert!((s.iqr() - 2.0).abs() < 1e-12);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rms_matches_hand_computation() {
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert!(rms(&[]).is_nan());
    }

    #[test]
    fn weighted_rms_uniform_weights_match_rms() {
        let e = [1.0, -2.0, 3.0];
        let w = [1.0 / 3.0; 3];
        assert!((weighted_rms(&e, &w) - rms(&e)).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_outliers() {
        // -1.0 clamps into bin 0; 0.5 lands on the boundary and goes to bin 1;
        // 2.0 clamps into bin 1.
        let h = histogram(&[-1.0, 0.1, 0.5, 0.9, 2.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]);
    }

    #[test]
    fn histogram_counts_upper_edge_in_last_bin() {
        // A value exactly at `hi` would index bin `bins` by the floor rule;
        // the clamp closes the last bin so the series max is counted there.
        // This is the contract format_violin relies on when it histograms
        // over [min, max].
        let v = [0.0, 0.25, 0.5, 0.75, 1.0, 1.0];
        let h = histogram(&v, 0.0, 1.0, 4);
        assert_eq!(h, vec![1, 1, 1, 3]);
        assert_eq!(h.iter().sum::<usize>(), v.len());
        // Degenerate all-equal series (span collapsed by the caller's
        // epsilon floor): everything lands in one bin, nothing is lost.
        let h = histogram(&[2.0, 2.0, 2.0], 2.0, 2.0 + 1e-12, 3);
        assert_eq!(h.iter().sum::<usize>(), 3);
    }
}
