//! Property-based tests for the linear-algebra substrate.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_linalg::{ops, stats, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a random SPD matrix `A = B Bᵀ + n·I` of size `n ∈ [1, 8]`.
fn spd_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut a = b.matmul(&b.transpose()).unwrap();
            a.add_diagonal(n as f64);
            a
        })
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #[test]
    fn cholesky_reconstructs_spd_matrices(a in spd_matrix()) {
        let ch = Cholesky::new(&a).unwrap();
        let r = ch.reconstruct().unwrap();
        let diff: f64 = (0..a.rows())
            .flat_map(|i| (0..a.cols()).map(move |j| (i, j)))
            .map(|(i, j)| (r[(i, j)] - a[(i, j)]).abs())
            .fold(0.0, f64::max);
        prop_assert!(diff < 1e-9 * (1.0 + a.frobenius_norm()));
    }

    #[test]
    fn cholesky_solve_inverts_matvec(a in spd_matrix()) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.37 - 1.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-7 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn log_det_matches_diagonal_product(a in spd_matrix()) {
        let ch = Cholesky::new(&a).unwrap();
        // |A| = prod L_ii^2; compare in log space.
        let direct: f64 = (0..ch.dim())
            .map(|i| ch.l()[(i, i)].ln() * 2.0)
            .sum();
        prop_assert!((ch.log_det() - direct).abs() < 1e-12);
    }

    #[test]
    fn quad_form_is_nonnegative(a in spd_matrix(), seed in 0u64..1000) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((seed as f64 + 1.0) * (i as f64 + 0.5)).sin()).collect();
        let ch = Cholesky::new(&a).unwrap();
        prop_assert!(ch.quad_form(&b).unwrap() >= 0.0);
    }

    #[test]
    fn matmul_is_associative_on_small_matrices(
        d1 in proptest::collection::vec(-2.0f64..2.0, 9),
        d2 in proptest::collection::vec(-2.0f64..2.0, 9),
        d3 in proptest::collection::vec(-2.0f64..2.0, 9),
    ) {
        let a = Matrix::from_vec(3, 3, d1);
        let b = Matrix::from_vec(3, 3, d2);
        let c = Matrix::from_vec(3, 3, d3);
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((ab_c[(i, j)] - a_bc[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
        let data: Vec<f64> = (0..rows * cols).map(|i| ((i as f64) * 0.7 + seed as f64).sin()).collect();
        let m = Matrix::from_vec(rows, cols, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(v in vector(20)) {
        let q25 = stats::quantile(&v, 0.25);
        let q50 = stats::quantile(&v, 0.5);
        let q75 = stats::quantile(&v, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert!(stats::min(&v) <= q25);
        prop_assert!(q75 <= stats::max(&v));
    }

    #[test]
    fn mean_lies_between_min_and_max(v in vector(15)) {
        let m = stats::mean(&v);
        prop_assert!(stats::min(&v) - 1e-12 <= m && m <= stats::max(&v) + 1e-12);
    }

    #[test]
    fn rms_is_zero_iff_all_zero(v in vector(10)) {
        let r = stats::rms(&v);
        let all_zero = v.iter().all(|&x| x == 0.0);
        prop_assert_eq!(r == 0.0, all_zero);
    }

    #[test]
    fn argmax_is_maximal(v in vector(12)) {
        let i = ops::argmax(&v).unwrap();
        for &x in &v {
            prop_assert!(v[i] >= x);
        }
    }

    #[test]
    fn dot_is_symmetric_and_linear(a in vector(8), b in vector(8), alpha in -3.0f64..3.0) {
        prop_assert!((ops::dot(&a, &b) - ops::dot(&b, &a)).abs() < 1e-12);
        let scaled: Vec<f64> = a.iter().map(|x| alpha * x).collect();
        prop_assert!((ops::dot(&scaled, &b) - alpha * ops::dot(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn sq_dist_is_a_metric_squared(a in vector(5), b in vector(5)) {
        prop_assert!(ops::sq_dist(&a, &b) >= 0.0);
        prop_assert!((ops::sq_dist(&a, &b) - ops::sq_dist(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(ops::sq_dist(&a, &a), 0.0);
    }

    #[test]
    fn histogram_counts_everything(v in vector(30), bins in 1usize..10) {
        let h = stats::histogram(&v, -10.0, 10.0, bins);
        prop_assert_eq!(h.iter().sum::<usize>(), v.len());
    }

    #[test]
    fn extend_then_downdate_roundtrips_bitwise(a in spd_matrix(), border in vector(8)) {
        let n = a.rows();
        let before = Cholesky::new(&a).unwrap();
        let mut ch = before.clone();
        // A strongly dominant corner keeps the bordered matrix SPD.
        let c = 10.0 * (n as f64 + 1.0) + border[..n].iter().map(|b| b * b).sum::<f64>();
        ch.extend(&border[..n], c).unwrap();
        ch.downdate(n).unwrap();
        prop_assert_eq!(ch.dim(), before.dim());
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(ch.l()[(i, j)].to_bits(), before.l()[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn downdate_matches_fresh_factorization_of_submatrix(a in spd_matrix(), pick in 0usize..8) {
        let n = a.rows();
        prop_assume!(n >= 2);
        let index = pick % n;
        let mut ch = Cholesky::new(&a).unwrap();
        ch.downdate(index).unwrap();
        // Fresh factorization of A with row/column `index` deleted.
        let mut sub = Matrix::zeros(n - 1, n - 1);
        for i in 0..n - 1 {
            for j in 0..n - 1 {
                let si = if i < index { i } else { i + 1 };
                let sj = if j < index { j } else { j + 1 };
                sub[(i, j)] = a[(si, sj)];
            }
        }
        let fresh = Cholesky::new(&sub).unwrap();
        for i in 0..n - 1 {
            for j in 0..n - 1 {
                prop_assert!(
                    (ch.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-8,
                    "L({},{}) diverges after removing {}", i, j, index
                );
            }
        }
    }
}
