//! Deterministic scoped worker pool shared by the workspace's hot paths.
//!
//! Every parallel site in this workspace follows one discipline, introduced
//! with the AMR sweep engine (DESIGN §7) and promoted here so the GP and
//! linear-algebra layers can reuse it: workers write into **index-addressed
//! slots** of a pre-sized buffer (each worker owns a disjoint range), and
//! the coordinating thread folds the buffer in **input order** afterwards.
//! No floating-point value ever crosses a thread boundary in a
//! schedule-dependent order, so results are bitwise identical for any
//! thread count, including 1.
//!
//! [`WorkerPool`] owns the resolved worker count and provides two
//! primitives: [`WorkerPool::run`] (spawn a vector of borrowing jobs via
//! [`std::thread::scope`], first job inline on the coordinator) and
//! [`WorkerPool::chunked_map`] (split an output slice into disjoint chunks
//! by [`chunk_ranges`], run one job per chunk, collect one return value per
//! chunk in chunk order). [`chunk_ranges`]/[`chunk_ranges_weighted`]
//! partition index spaces into contiguous ascending ranges.
//!
//! `crates/parallel/src/pool.rs` is an alint L6 `spawn_approved` module
//! (DESIGN §9/§13): everywhere else, `spawn`/parallel iterators are a lint
//! violation and must route through this pool.

pub mod pool;

pub use pool::{chunk_ranges, chunk_ranges_weighted, WorkerPool};
