//! The scoped worker pool and its index partitioners.
//!
//! **Audit notes (alint L6 `spawn_approved`).** This module is the
//! workspace's shared thread fan-out point. Its determinism contract:
//!
//! * Jobs receive **disjoint** `&mut` chunks of caller-owned buffers
//!   (enforced by `split_at_mut` — the borrow checker proves disjointness),
//!   so no write is ever racy and no result depends on which worker ran a
//!   chunk or when it finished.
//! * Per-chunk return values land in index-addressed slots and are handed
//!   back **in chunk order**; callers fold them in that order (ordered
//!   reduction). Thread scheduling cannot reach the numbers.
//! * With one chunk (or one worker) the job runs inline on the
//!   coordinating thread — byte-for-byte the serial loop.
//!
//! Callers must not introduce cross-chunk communication (channels, shared
//! accumulators) on top of these primitives; that would reintroduce
//! schedule-dependent reduction order.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Partition `0..n_items` into at most `max_chunks` contiguous, non-empty,
/// ascending ranges of at least `min_per_chunk` items each (except when
/// fewer than `min_per_chunk` items exist in total, which yields one
/// undersized chunk). Every index is covered exactly once; `n_items == 0`
/// yields no chunks. Degenerate inputs (`max_chunks == 0`,
/// `min_per_chunk == 0`, more chunks than items) are clamped rather than
/// rejected, since callers feed it raw thread counts and problem sizes.
pub fn chunk_ranges(n_items: usize, max_chunks: usize, min_per_chunk: usize) -> Vec<Range<usize>> {
    if n_items == 0 {
        return Vec::new();
    }
    let min_per_chunk = min_per_chunk.max(1);
    // Floor division so `chunks · min_per_chunk ≤ n_items`: every chunk of
    // the near-even split below then holds at least `min_per_chunk` items.
    let chunks = max_chunks.clamp(1, (n_items / min_per_chunk).max(1));
    let base = n_items / chunks;
    let extra = n_items % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Like [`chunk_ranges`], but balances *weight* instead of item count:
/// chunk boundaries are placed where the cumulative `weight(i)` crosses
/// even fractions of the total, subject to the same `min_per_chunk` floor.
/// Triangular workloads (row `i` of a symmetric kernel matrix costs
/// `n − i` evaluations) would otherwise hand the first worker ~2× the work
/// of the last. The weights shape the schedule only, never the results.
pub fn chunk_ranges_weighted(
    n_items: usize,
    max_chunks: usize,
    min_per_chunk: usize,
    weight: impl Fn(usize) -> u64,
) -> Vec<Range<usize>> {
    if n_items == 0 {
        return Vec::new();
    }
    let min_per_chunk = min_per_chunk.max(1);
    let chunks = max_chunks.clamp(1, (n_items / min_per_chunk).max(1));
    if chunks == 1 {
        // One chunk covering every item — a range is the value, not a
        // collect shorthand.
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..n_items];
    }
    let total: u128 = (0..n_items).map(|i| u128::from(weight(i))).sum();
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for i in 0..n_items {
        acc += u128::from(weight(i));
        let produced = ranges.len() as u128;
        // Items that must stay available for the chunks after this one.
        let reserve = (chunks - ranges.len() - 1) * min_per_chunk;
        let len = i + 1 - start;
        let target = total * (produced + 1) / chunks as u128;
        let remaining = n_items - (i + 1);
        if len >= min_per_chunk && remaining >= reserve && (acc >= target || remaining == reserve) {
            ranges.push(start..i + 1);
            start = i + 1;
            if ranges.len() == chunks - 1 {
                break;
            }
        }
    }
    ranges.push(start..n_items);
    ranges
}

/// Scoped worker pool with a resolved thread count.
///
/// The count is resolved once at construction (`0` = all cores reported by
/// [`std::thread::available_parallelism`], the `SolverProfile::n_threads`
/// convention) and only shapes schedules: every primitive below produces
/// bitwise-identical results for any count. The pool holds no threads
/// between calls — workers are scoped borrowing threads spawned per call,
/// so a pool is `Copy`-cheap to clone and store inside models.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    n_workers: usize,
}

impl WorkerPool {
    /// Build a pool with `n_threads` workers; `0` resolves to all
    /// available cores (falling back to 1 if the platform cannot say).
    pub fn new(n_threads: usize) -> Self {
        let n_workers = if n_threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            n_threads
        };
        WorkerPool { n_workers }
    }

    /// Resolved worker count (never 0).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Run a vector of independent jobs to completion: job 0 inline on the
    /// coordinating thread (one fewer spawn — a 2-job call costs a single
    /// thread launch), the rest on scoped threads. Returns after every job
    /// finished. With 0 or 1 jobs nothing is spawned at all.
    ///
    /// Jobs must write only state they own or mutably borrow (disjoint
    /// `split_at_mut` chunks); the caller folds any cross-job results in
    /// input order after this returns.
    pub fn run<J>(&self, jobs: Vec<J>)
    where
        J: FnOnce() + Send,
    {
        let mut jobs = jobs.into_iter();
        let Some(first) = jobs.next() else {
            return;
        };
        let rest: Vec<J> = jobs.collect();
        if rest.is_empty() {
            first();
            return;
        }
        std::thread::scope(|scope| {
            for job in rest {
                scope.spawn(job);
            }
            first();
        });
    }

    /// Index-addressed parallel map over a sliced output buffer.
    ///
    /// `out` is split at the `ranges` boundaries scaled by `stride` (index
    /// `i` owns `out[i*stride .. (i+1)*stride]`); each chunk runs
    /// `work(range, chunk)` on one worker, with the first chunk on the
    /// coordinating thread. The per-chunk return values come back in chunk
    /// order, so folding them left-to-right is an ordered reduction.
    ///
    /// `ranges` must be the ascending, contiguous cover of
    /// `0..out.len()/stride` that [`chunk_ranges`] or
    /// [`chunk_ranges_weighted`] produce (debug-asserted). A single range
    /// runs inline — byte-for-byte the serial loop.
    pub fn chunked_map<T, R, F>(
        &self,
        out: &mut [T],
        ranges: &[Range<usize>],
        stride: usize,
        work: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(Range<usize>, &mut [T]) -> R + Sync,
    {
        debug_assert!(stride > 0, "stride must be positive");
        debug_assert!(
            ranges
                .iter()
                .try_fold(0usize, |next, r| (r.start == next).then_some(r.end))
                == Some(out.len() / stride.max(1)),
            "ranges must contiguously cover the output buffer"
        );
        let mut results: Vec<Option<R>> = Vec::with_capacity(ranges.len());
        results.resize_with(ranges.len(), || None);
        if ranges.len() <= 1 {
            if let (Some(range), Some(slot)) = (ranges.first(), results.first_mut()) {
                *slot = Some(work(range.clone(), out));
            }
        } else {
            std::thread::scope(|scope| {
                let mut out_tail = out;
                let mut slot_tail: &mut [Option<R>] = &mut results;
                let mut coordinator = None;
                for (c, range) in ranges.iter().enumerate() {
                    let (chunk, rest) =
                        std::mem::take(&mut out_tail).split_at_mut(range.len() * stride);
                    out_tail = rest;
                    let (slot, rest) = std::mem::take(&mut slot_tail).split_at_mut(1);
                    slot_tail = rest;
                    if c == 0 {
                        coordinator = Some((range, chunk, slot));
                    } else {
                        let work = &work;
                        scope.spawn(move || {
                            slot[0] = Some(work(range.clone(), chunk));
                        });
                    }
                }
                if let Some((range, chunk, slot)) = coordinator {
                    slot[0] = Some(work(range.clone(), chunk));
                }
            });
        }
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_split_evenly() {
        assert_eq!(chunk_ranges(10, 2, 1), vec![0..5, 5..10]);
        assert_eq!(chunk_ranges(7, 3, 1), vec![0..3, 3..5, 5..7]);
        assert_eq!(chunk_ranges(0, 4, 1), Vec::<Range<usize>>::new());
        // More workers than items: one chunk per item at most.
        assert_eq!(chunk_ranges(2, 8, 1), vec![0..1, 1..2]);
    }

    #[test]
    fn chunk_ranges_honour_min_per_chunk() {
        // 10 items, min 4: only 2 chunks fit a 4-item floor.
        let ranges = chunk_ranges(10, 8, 4);
        assert_eq!(ranges, vec![0..5, 5..10]);
        // Fewer items than the minimum: one undersized chunk.
        assert_eq!(chunk_ranges(3, 8, 4), vec![0..3]);
        // Degenerate hints are clamped, not rejected.
        assert_eq!(chunk_ranges(5, 0, 0), vec![0..5]);
    }

    #[test]
    fn weighted_ranges_cover_exactly_and_balance_weight() {
        // Triangular weights n − i: the first chunk should hold fewer items
        // than the last because its items are heavier.
        let n = 100;
        let w = |i: usize| (n - i) as u64;
        let ranges = chunk_ranges_weighted(n, 4, 1, w);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().map(|r| r.end), Some(n));
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!(
            ranges[0].len() < ranges[3].len(),
            "heavy prefix must get fewer items: {ranges:?}"
        );
        // Per-chunk weight is within 2× of the ideal quarter share.
        let total: u64 = (0..n).map(w).sum();
        for r in &ranges {
            let cw: u64 = r.clone().map(w).sum();
            assert!(cw <= total / 2, "chunk {r:?} holds {cw} of {total}");
        }
    }

    #[test]
    fn weighted_ranges_respect_min_and_degenerate_inputs() {
        assert_eq!(
            chunk_ranges_weighted(0, 4, 1, |_| 1),
            Vec::<Range<usize>>::new()
        );
        assert_eq!(chunk_ranges_weighted(3, 8, 4, |_| 1), vec![0..3]);
        assert_eq!(chunk_ranges_weighted(5, 0, 0, |_| 1), vec![0..5]);
        // All-zero weights degrade to min-size chunks, still covering.
        let ranges = chunk_ranges_weighted(8, 4, 2, |_| 0);
        assert_eq!(ranges.first().map(|r| r.start), Some(0));
        assert_eq!(ranges.last().map(|r| r.end), Some(8));
        for r in &ranges {
            assert!(r.len() >= 2);
        }
    }

    #[test]
    fn pool_resolves_zero_to_at_least_one_worker() {
        assert!(WorkerPool::new(0).n_workers() >= 1);
        assert_eq!(WorkerPool::new(3).n_workers(), 3);
    }

    #[test]
    fn run_executes_every_job_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..7)
            .map(|_| {
                let counter = &counter;
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 7);
        // Empty and single-job calls take the inline path.
        pool.run(Vec::<fn()>::new());
        let one = AtomicUsize::new(0);
        pool.run(vec![|| {
            one.fetch_add(1, Ordering::Relaxed);
        }]);
        assert_eq!(one.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn chunked_map_is_bitwise_identical_across_worker_counts() {
        // A float workload whose per-slot value depends only on the index:
        // every worker count must produce the same bits.
        let n = 103;
        let body = |range: Range<usize>, chunk: &mut [f64]| -> f64 {
            let mut local = 0.0f64;
            for (offset, slot) in chunk.iter_mut().enumerate() {
                let i = range.start + offset;
                *slot = (i as f64 * 0.37).sin() / (1.0 + i as f64);
                local += *slot;
            }
            local
        };
        let reference = {
            let pool = WorkerPool::new(1);
            let mut out = vec![0.0f64; n];
            let ranges = chunk_ranges(n, pool.n_workers(), 1);
            pool.chunked_map(&mut out, &ranges, 1, body);
            out
        };
        for workers in [2usize, 3, 8] {
            let pool = WorkerPool::new(workers);
            let mut out = vec![0.0f64; n];
            let ranges = chunk_ranges(n, pool.n_workers(), 1);
            // Per-chunk partials come back in chunk order; the slot contents
            // (the contract) must match the serial run bit for bit.
            let partials = pool.chunked_map(&mut out, &ranges, 1, body);
            assert_eq!(partials.len(), ranges.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn chunked_map_strided_rows_stay_disjoint() {
        let rows = 9;
        let stride = 4;
        let pool = WorkerPool::new(3);
        let mut out = vec![0u32; rows * stride];
        let ranges = chunk_ranges(rows, pool.n_workers(), 1);
        let statuses: Vec<Range<usize>> =
            pool.chunked_map(&mut out, &ranges, stride, |range, chunk| {
                for (offset, v) in chunk.iter_mut().enumerate() {
                    let row = range.start + offset / stride;
                    *v = row as u32;
                }
                range
            });
        assert_eq!(statuses, ranges, "returns come back in chunk order");
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i / stride) as u32);
        }
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one chunk covering 0..5 is the point
    fn chunked_map_handles_empty_and_single_range() {
        let pool = WorkerPool::new(4);
        let mut empty: Vec<f64> = Vec::new();
        let none: Vec<()> = pool.chunked_map(&mut empty, &[], 1, |_, _| ());
        assert!(none.is_empty());
        let mut out = vec![0u32; 5];
        let one = pool.chunked_map(&mut out, &[0..5], 1, |range, chunk| {
            for v in chunk.iter_mut() {
                *v = 1;
            }
            range.len()
        });
        assert_eq!(one, vec![5]);
        assert!(out.iter().all(|v| *v == 1));
    }
}
