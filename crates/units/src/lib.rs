//! Typed physical quantities for the cost/memory pipeline.
//!
//! The paper's two headline observables — node-hours of cost and MB of
//! MaxRSS (Duplyakin et al., IPDPSW 2018) — flow through the machine
//! model, the dataset, and the selection strategies in at least six
//! different units (µs/update, ns/ghost-cell, seconds, node-hours,
//! bytes/cell, MB). This crate turns each unit into a newtype so that a
//! silent mix-up (pricing `wall_seconds` as node-hours, comparing bytes
//! against an MB limit) is a *compile* error, and so the companion alint
//! L5 `unit_safety` pass can treat the remaining `f64` world as suspect.
//!
//! # Conversion contract
//!
//! - Constructors (`new`) debug-assert the magnitude is finite; quantities
//!   never wrap NaN/∞ in debug builds.
//! - Conversions are explicit, exactly-factored methods (`to_seconds`,
//!   `to_megabytes`, `node_hours`, ...). There are no `From`/`Into` impls
//!   between unit types: every unit change is spelled at the call site,
//!   which is also what the L5 lint keys its suppression on.
//! - `Mul`/`Div` produce the correct derived unit: a per-item rate times a
//!   [`CellUpdates`] count yields the rate's unit totalled over the items;
//!   dividing two like quantities yields a dimensionless `f64` ratio;
//!   scaling by `f64` stays in the same unit.
//! - [`Display`](std::fmt::Display) prints the bare magnitude (delegating
//!   to `f64`, so `{:.3}` etc. work); the unit lives in the type and the
//!   field name, keeping CSV and log output byte-compatible with the
//!   pre-typed pipeline.

#![warn(missing_docs)]
// Unit tests assert exact round-trips of power-of-two representable values.
#![cfg_attr(test, allow(clippy::float_cmp))]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            #[doc = concat!("Wrap a magnitude in ", $unit, ". Debug-asserts finiteness.")]
            pub fn new(value: f64) -> Self {
                debug_assert!(value.is_finite(), "non-finite {}: {value}", $unit);
                $name(value)
            }

            #[doc = concat!("The bare magnitude in ", $unit, ".")]
            pub fn value(self) -> f64 {
                self.0
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities: dimensionless.
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }
    };
}

quantity!(
    /// Wall-clock time in seconds (Table I response 1).
    Seconds,
    "seconds"
);
quantity!(
    /// Time in microseconds — per-update compute and per-round latency rates.
    Micros,
    "microseconds"
);
quantity!(
    /// Time in nanoseconds — the per-ghost-cell bandwidth rate.
    Nanos,
    "nanoseconds"
);
quantity!(
    /// Job cost in node-hours (Table I response 2), the paper's `c`.
    NodeHours,
    "node-hours"
);
quantity!(
    /// Memory in megabytes — MaxRSS per process (Table I response 3), the
    /// paper's `m`. 1 MB = 10^6 bytes, matching SLURM accounting.
    Megabytes,
    "megabytes"
);
quantity!(
    /// Memory in bytes — the per-cell storage rate.
    Bytes,
    "bytes"
);

impl Seconds {
    /// Exact conversion to microseconds (× 10⁶).
    pub fn to_micros(self) -> Micros {
        Micros::new(self.0 * 1e6)
    }

    /// Price this wall-clock duration on `nodes` nodes:
    /// `wall · nodes / 3600` node-hours — exactly the paper's cost formula.
    pub fn node_hours(self, nodes: f64) -> NodeHours {
        NodeHours::new(self.0 * nodes / 3600.0)
    }
}

impl Micros {
    /// Exact conversion to seconds (× 10⁻⁶).
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.0 * 1e-6)
    }
}

impl Nanos {
    /// Exact conversion to seconds (× 10⁻⁹).
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.0 * 1e-9)
    }
}

impl Bytes {
    /// Exact conversion to megabytes (÷ 10⁶).
    pub fn to_megabytes(self) -> Megabytes {
        Megabytes::new(self.0 / 1e6)
    }
}

impl Megabytes {
    /// Exact conversion to bytes (× 10⁶).
    pub fn to_bytes(self) -> Bytes {
        Bytes::new(self.0 * 1e6)
    }

    /// The log₁₀ view the memory GP and the paper's limit `L_mem` live in.
    /// Debug-asserts positivity (the log transform requires it).
    pub fn log10(self) -> LogMegabytes {
        debug_assert!(self.0 > 0.0, "log10 of non-positive megabytes {}", self.0);
        LogMegabytes::new(self.0.log10())
    }
}

/// A count of directional cell updates (or cells — the solver's
/// order-invariant work counters). Multiplying a per-item rate by a count
/// totals the rate over the items, preserving the rate's unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct CellUpdates(u64);

impl CellUpdates {
    /// Wrap a raw counter.
    pub fn new(count: u64) -> Self {
        CellUpdates(count)
    }

    /// The raw counter.
    pub fn count(self) -> u64 {
        self.0
    }
}

impl Add for CellUpdates {
    type Output = CellUpdates;
    fn add(self, rhs: CellUpdates) -> CellUpdates {
        CellUpdates(self.0 + rhs.0)
    }
}

impl AddAssign for CellUpdates {
    fn add_assign(&mut self, rhs: CellUpdates) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for CellUpdates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl Mul<CellUpdates> for Micros {
    type Output = Micros;
    fn mul(self, rhs: CellUpdates) -> Micros {
        Micros::new(self.0 * rhs.0 as f64)
    }
}

impl Mul<CellUpdates> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: CellUpdates) -> Nanos {
        Nanos::new(self.0 * rhs.0 as f64)
    }
}

impl Mul<CellUpdates> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: CellUpdates) -> Bytes {
        Bytes::new(self.0 * rhs.0 as f64)
    }
}

/// A memory limit (or level) in log₁₀ MB — the space the memory GP trains
/// in and the paper's `L_mem` is stated in. Kept distinct from
/// [`Megabytes`] so log-space and raw-space values can never be compared
/// or mixed without an explicit [`LogMegabytes::to_megabytes`] /
/// [`Megabytes::log10`] conversion.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct LogMegabytes(f64);

impl LogMegabytes {
    /// Wrap a log₁₀-MB magnitude. Debug-asserts finiteness.
    pub fn new(value: f64) -> Self {
        debug_assert!(value.is_finite(), "non-finite log10-MB: {value}");
        LogMegabytes(value)
    }

    /// The bare magnitude in log₁₀ MB.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Exact inverse of [`Megabytes::log10`]: `10^value` MB.
    pub fn to_megabytes(self) -> Megabytes {
        Megabytes::new(10f64.powf(self.0))
    }

    /// RGMA's admission test: does a predicted log₁₀-MB mean `mu_log` fall
    /// strictly below this limit? (The paper filters to `μ_mem < L_mem`.)
    pub fn admits(self, mu_log: f64) -> bool {
        mu_log < self.0
    }
}

/// Shift a log-space limit by `rhs` decades.
impl Add<f64> for LogMegabytes {
    type Output = LogMegabytes;
    fn add(self, rhs: f64) -> LogMegabytes {
        LogMegabytes::new(self.0 + rhs)
    }
}

/// Shift a log-space limit down by `rhs` decades.
impl Sub<f64> for LogMegabytes {
    type Output = LogMegabytes;
    fn sub(self, rhs: f64) -> LogMegabytes {
        LogMegabytes::new(self.0 - rhs)
    }
}

impl fmt::Display for LogMegabytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_stays_in_unit() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((a * 4.0).value(), 6.0);
        assert_eq!((a / 3.0).value(), 0.5);
        assert_eq!(a / b, 3.0, "like-unit division is a ratio");
        let mut acc = Seconds::new(0.0);
        acc += a;
        acc -= b;
        assert_eq!(acc.value(), 1.0);
        let total: Seconds = [a, b, b].into_iter().sum();
        assert_eq!(total.value(), 2.5);
    }

    #[test]
    fn time_conversions_are_exact_inverses() {
        let us = Micros::new(2_500_000.0);
        assert_eq!(us.to_seconds().value(), 2.5);
        assert_eq!(Seconds::new(2.5).to_micros().value(), 2_500_000.0);
        assert_eq!(Nanos::new(3e9).to_seconds().value(), 3.0);
    }

    #[test]
    fn node_hours_match_the_paper_formula() {
        // wall · p / 3600, the paper's cost definition.
        let cost = Seconds::new(7200.0).node_hours(8.0);
        assert_eq!(cost.value(), 16.0);
    }

    #[test]
    fn memory_conversions_roundtrip() {
        let b = Bytes::new(32e6);
        assert_eq!(b.to_megabytes().value(), 32.0);
        assert_eq!(Megabytes::new(32.0).to_bytes().value(), 32e6);
        let log = Megabytes::new(100.0).log10();
        assert!((log.value() - 2.0).abs() < 1e-12);
        assert!((log.to_megabytes().value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rate_times_count_totals_the_rate() {
        let per_update = Micros::new(3.0);
        let total = per_update * CellUpdates::new(1_000_000);
        assert_eq!(total.value(), 3_000_000.0);
        assert_eq!(total.to_seconds().value(), 3.0);
        let bytes = Bytes::new(32.0) * CellUpdates::new(2_000_000);
        assert_eq!(bytes.to_megabytes().value(), 64.0);
        let ns = Nanos::new(60.0) * CellUpdates::new(1_000);
        assert_eq!(ns.value(), 60_000.0);
    }

    #[test]
    fn cell_updates_accumulate() {
        let mut c = CellUpdates::new(5);
        c += CellUpdates::new(7);
        assert_eq!((c + CellUpdates::new(3)).count(), 15);
    }

    #[test]
    fn log_limit_admits_strictly_below() {
        let limit = LogMegabytes::new(1.0);
        assert!(limit.admits(0.999));
        assert!(!limit.admits(1.0), "boundary is excluded, per the paper");
        assert!(!limit.admits(1.5));
        assert_eq!((limit + 0.5).value(), 1.5);
        assert_eq!((limit - 0.25).value(), 0.75);
    }

    #[test]
    fn ordering_and_display_delegate_to_f64() {
        assert!(Megabytes::new(1.0) < Megabytes::new(2.0));
        assert!(NodeHours::new(3.0) >= NodeHours::new(3.0));
        assert_eq!(format!("{}", Seconds::new(1.25)), "1.25");
        assert_eq!(format!("{:.1}", Megabytes::new(2.345)), "2.3");
        assert_eq!(format!("{}", CellUpdates::new(42)), "42");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_magnitudes_are_rejected_in_debug() {
        let _ = Seconds::new(f64::NAN);
    }
}
