//! Watch the AMR solver work: evolve the shock–bubble interaction and
//! print ASCII density frames plus the patch census as refinement tracks
//! the moving shock and the deforming bubble (the paper's Fig. 1, live).
//!
//! Run: `cargo run --release --example amr_viz`

// Examples abort on failure by design; the panic-site lints target
// library code (see alint L1).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use al_for_amr::amr::viz::{ascii_density, census_table};
use al_for_amr::amr::{AmrSolver, SimulationConfig, SolverProfile};

fn main() {
    let config = SimulationConfig {
        p: 8,
        mx: 16,
        maxlevel: 5,
        r0: 0.4,
        rhoin: 0.05,
    };
    let mut profile = SolverProfile::paper();
    profile.t_final = 0.06; // long enough for the shock to hit the bubble

    println!("shock-bubble interaction, maxlevel = {}\n", config.maxlevel);
    let mut solver = AmrSolver::new(&config, profile);

    let frames = 4;
    for frame in 0..=frames {
        let target = profile.t_final * frame as f64 / frames as f64;
        while solver.time() < target {
            solver.step().expect("step");
        }
        println!(
            "--- t = {:.4} ({} steps, {} leaf patches) ---",
            solver.time(),
            solver.stats().steps,
            solver.forest().n_leaves()
        );
        println!("{}", ascii_density(solver.forest(), 56));
    }

    println!("final patch census:");
    println!("{}", census_table(solver.forest()));
    let w = solver.stats();
    println!(
        "work: {} steps, {:.2e} cell updates, {:.2e} ghost cells exchanged, {} regrids",
        w.steps, w.cell_updates as f64, w.ghost_cells as f64, w.regrid_count
    );
}
