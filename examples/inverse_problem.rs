//! The payoff the paper motivates: once AL has produced trustworthy cost
//! and memory surrogates, the experimenter can *invert* them — "which is
//! the highest-resolution simulation I can afford within my budget and
//! memory limit?" — without running a single extra job.
//!
//! Trains surrogates on a small measured dataset, then scans the full
//! candidate grid for the best predicted-affordable configuration, using
//! posterior uncertainty for a safety margin (μ + 2σ must fit the budget).
//!
//! Run: `cargo run --release --example inverse_problem`

// Examples abort on failure by design; the panic-site lints target
// library code (see alint L1).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use al_for_amr::amr::{run_simulation, MachineModel, SolverProfile};
use al_for_amr::dataset::transform::unlog10_response;
use al_for_amr::dataset::{generate_parallel, Dataset, GenerateOptions, SweepGrid};
use al_for_amr::gp::{FitOptions, GpModel, KernelKind};
use al_for_amr::linalg::Matrix;

/// Budget for one simulation, node-hours.
const BUDGET: f64 = 0.02;

/// Memory limit per process, MB.
const MEM_LIMIT: f64 = 2.0;

fn main() {
    // Measure a subset of the space (the AL phase; uniform here for
    // brevity — see `memory_aware_sweep` for the full RGMA loop).
    println!("measuring 28 training configurations...");
    let grid = SweepGrid::small();
    let jobs = grid.draw_jobs(28, 0, 5);
    let samples = generate_parallel(
        &jobs,
        &GenerateOptions {
            profile: SolverProfile::smoke(),
            machine: MachineModel::default(),
            n_threads: 0,
        },
    )
    .expect("dataset generation");
    let dataset = Dataset::new(samples);
    let idx: Vec<usize> = (0..dataset.len()).collect();

    let fit = FitOptions::default();
    let mut gp_cost = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    gp_cost
        .fit_optimized(
            &dataset.features_scaled(&idx),
            &dataset.log_cost(&idx),
            &fit,
        )
        .expect("cost fit");
    let mut gp_mem = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    gp_mem
        .fit_optimized(
            &dataset.features_scaled(&idx),
            &dataset.log_memory(&idx),
            &fit,
        )
        .expect("memory fit");

    // Invert: scan every grid configuration, keep those whose pessimistic
    // (μ + 2σ) predictions satisfy both constraints, rank by resolution.
    println!(
        "\nscanning {} candidate configurations (budget {BUDGET} node-hours, limit {MEM_LIMIT} MB)...",
        grid.n_combinations()
    );
    let candidates = grid.all_configs();
    let rows: Vec<f64> = candidates
        .iter()
        .flat_map(|c| dataset.scaler().transform(&c.features()))
        .collect();
    let xq = Matrix::from_vec(candidates.len(), 5, rows);
    let pc = gp_cost.predict(&xq).expect("predict cost");
    let pm = gp_mem.predict(&xq).expect("predict memory");

    let mut affordable: Vec<(usize, f64)> = (0..candidates.len())
        .filter(|&i| {
            unlog10_response(pc.mean[i] + 2.0 * pc.std[i]) <= BUDGET
                && unlog10_response(pm.mean[i] + 2.0 * pm.std[i]) <= MEM_LIMIT
        })
        .map(|i| {
            // Effective resolution = mx · 2^maxlevel.
            let c = &candidates[i];
            (i, (c.mx as f64) * f64::from(1u32 << c.maxlevel))
        })
        .collect();
    affordable.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!(
        "{} of {} configurations predicted affordable; top 5 by resolution:\n",
        affordable.len(),
        candidates.len()
    );
    println!(
        "{:>4} {:>3} {:>9} {:>5} {:>6} {:>10} {:>22} {:>20}",
        "p", "mx", "maxlevel", "r0", "rhoin", "eff.res", "pred cost (±2σ hi)", "pred mem (±2σ hi)"
    );
    for &(i, res) in affordable.iter().take(5) {
        let c = &candidates[i];
        println!(
            "{:>4} {:>3} {:>9} {:>5.2} {:>6.2} {:>10} {:>11.4} ({:>8.4}) {:>9.3} ({:>8.3})",
            c.p,
            c.mx,
            c.maxlevel,
            c.r0,
            c.rhoin,
            res as u64,
            unlog10_response(pc.mean[i]),
            unlog10_response(pc.mean[i] + 2.0 * pc.std[i]),
            unlog10_response(pm.mean[i]),
            unlog10_response(pm.mean[i] + 2.0 * pm.std[i]),
        );
    }

    // Verify the recommendation by actually running it.
    if let Some(&(best, _)) = affordable.first() {
        let config = candidates[best];
        println!("\nverifying the top recommendation by running it: {config:?}");
        let outcome = run_simulation(&config, SolverProfile::smoke(), &MachineModel::default(), 0)
            .expect("simulation");
        println!(
            "measured: cost {:.4} node-hours (budget {BUDGET}), memory {:.3} MB (limit {MEM_LIMIT})",
            outcome.cost_node_hours, outcome.memory_mb
        );
        let ok_cost = outcome.cost_node_hours.value() <= BUDGET * 1.5;
        let ok_mem = outcome.memory_mb.value() <= MEM_LIMIT * 1.5;
        println!(
            "within 1.5x of the constraints: cost {} / memory {}",
            if ok_cost { "yes" } else { "NO" },
            if ok_mem { "yes" } else { "NO" }
        );
    } else {
        println!("\nno configuration fits the constraints — relax the budget.");
    }
}
