//! Memory-aware vs memory-oblivious experiment selection: the paper's
//! two-phase workflow. Phase 1 measures a handful of configurations in a
//! big-memory environment; phase 2 continues on nodes with less memory,
//! where every job whose MaxRSS exceeds the limit crashes and its cost is
//! wasted (cumulative regret). RGMA consults the memory model to avoid
//! those jobs; RandGoodness does not.
//!
//! Run: `cargo run --release --example memory_aware_sweep`

// Examples abort on failure by design; the panic-site lints target
// library code (see alint L1).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use al_for_amr::al::{run_trajectory, AlOptions, StrategyKind};
use al_for_amr::amr::{MachineModel, SolverProfile};
use al_for_amr::dataset::{generate_parallel, Dataset, GenerateOptions, Partition, SweepGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Generate a compact dataset with the live solver (64 jobs).
    println!("measuring 64 AMR configurations...");
    let grid = SweepGrid {
        p: vec![4, 8, 16, 32],
        mx: vec![8, 16],
        maxlevel: vec![3, 4],
        r0: vec![0.25, 0.45],
        rhoin: vec![0.05, 0.3],
    };
    let jobs = grid.draw_jobs(56, 8, 99);
    let samples = generate_parallel(
        &jobs,
        &GenerateOptions {
            profile: SolverProfile::smoke(),
            machine: MachineModel::default(),
            n_threads: 0,
        },
    )
    .expect("dataset generation");
    let dataset = Dataset::new(samples);

    // Phase-2 memory limit: the 85th percentile of the measured memory
    // distribution, so ~15% of the pool genuinely exceeds it. (The older
    // `memory_limit_log(0.8)` — 80% of the *max* log memory — landed
    // above every sample on this short-tailed pool, excluding 0 jobs and
    // collapsing both strategies to an uninformative 0-regret tie.)
    let lmem_log = dataset.memory_limit_log_percentile(0.85);
    let lmem_raw = lmem_log.to_megabytes();
    let n_over = dataset
        .samples()
        .iter()
        .filter(|s| s.memory_mb >= lmem_raw)
        .count();
    println!(
        "dataset: {} samples; phase-2 limit {:.3} MB ({} samples would crash)\n",
        dataset.len(),
        lmem_raw,
        n_over
    );
    assert!(
        n_over * 20 >= dataset.len(),
        "phase-2 limit must exclude ≥5% of the pool, got {n_over}/{}",
        dataset.len()
    );

    let mut rng = StdRng::seed_from_u64(123);
    let partition = Partition::random(dataset.len(), 8, 20, &mut rng);
    let opts = AlOptions {
        mem_limit_log: Some(lmem_log),
        ..AlOptions::default()
    };

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10} {:>14}",
        "strategy", "iterations", "total cost", "regret (CR)", "crashes", "final RMSE"
    );
    let mut regrets = Vec::new();
    for kind in [
        StrategyKind::RandGoodness { base: 10.0 },
        StrategyKind::Rgma { base: 10.0 },
    ] {
        let t = run_trajectory(&dataset, &partition, kind, &opts).expect("trajectory");
        println!(
            "{:<14} {:>10} {:>12.3} {:>12.3} {:>10} {:>14.4}",
            kind.label(),
            t.len(),
            t.total_cost(),
            t.total_regret(),
            t.violations(),
            t.records.last().map(|r| r.rmse_cost).unwrap_or(f64::NAN)
        );
        regrets.push(t.total_regret());
    }
    let gap = (regrets[0] - regrets[1]).value();
    println!(
        "\nRGMA saves {gap:.3} node-hours of cumulative regret (wasted cost on\n\
         crashed jobs) over memory-oblivious RandGoodness."
    );
    // Guard the experiment's point: a 0-vs-0 regret tie means the derived
    // limit excluded nothing and the comparison shows nothing.
    assert!(
        gap > 0.0,
        "memory-aware advantage vanished: RandGoodness regret {} vs RGMA {}",
        regrets[0],
        regrets[1]
    );
}
