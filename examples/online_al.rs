//! Online active learning: instead of consulting a precomputed database
//! (the paper's offline simulator), drive the *live* AMR solver — each AL
//! iteration launches the selected simulation, measures it, and retrains.
//! This is the workflow an experimenter would run against a real cluster.
//!
//! Run: `cargo run --release --example online_al`

// Examples abort on failure by design; the panic-site lints target
// library code (see alint L1).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use al_for_amr::amr::{run_simulation, MachineModel, SolverProfile};
use al_for_amr::dataset::transform::log10_response;
use al_for_amr::dataset::{FeatureScaler, SweepGrid};
use al_for_amr::gp::{FitOptions, GpModel, KernelKind};
use al_for_amr::linalg::rng::weighted_index;
use al_for_amr::linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Memory budget per process, MB: candidates predicted above it are
/// filtered out (RGMA's safety rule).
const MEM_LIMIT_MB: f64 = 3.0;

/// Iterations of online AL to run.
const ITERATIONS: usize = 12;

fn main() {
    // Candidate pool: the small sweep grid (32 configurations).
    let grid = SweepGrid::small();
    let mut candidates = grid.all_configs();
    let scaler = FeatureScaler::fit(&candidates.iter().map(|c| c.features()).collect::<Vec<_>>());
    let machine = MachineModel::default();
    let profile = SolverProfile::smoke();
    let mut rng = StdRng::seed_from_u64(11);

    // Bootstrap: run the cheapest-looking configuration first (the paper's
    // "verify correctness on a new platform" first run).
    let first = candidates.remove(0);
    println!("bootstrap run: {first:?}");
    let outcome = run_simulation(&first, profile, &machine, 0).expect("simulation");
    let mut xs: Vec<[f64; 5]> = vec![scaler.transform(&first.features())];
    let mut log_costs = vec![log10_response(outcome.cost_node_hours.value())];
    let mut log_mems = vec![log10_response(outcome.memory_mb.value())];
    let mut total_cost = outcome.cost_node_hours;

    let mut gp_cost = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    let mut gp_mem = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    let fit = FitOptions::default();
    let train = |gp: &mut GpModel, xs: &[[f64; 5]], ys: &[f64]| {
        let data: Vec<f64> = xs.iter().flatten().copied().collect();
        let x = Matrix::from_vec(xs.len(), 5, data);
        gp.fit_optimized(&x, ys, &fit).expect("fit");
    };
    train(&mut gp_cost, &xs, &log_costs);
    train(&mut gp_mem, &xs, &log_mems);

    let limit_log = MEM_LIMIT_MB.log10();
    println!("memory limit: {MEM_LIMIT_MB} MB per process\n");
    println!("iter  p  mx  maxlevel    r0  rhoin   pred-cost  actual-cost  mem(MB)  safe?");

    for iter in 0..ITERATIONS {
        if candidates.is_empty() {
            println!("candidate pool exhausted");
            break;
        }
        // Predict every remaining candidate.
        let rows: Vec<f64> = candidates
            .iter()
            .flat_map(|c| scaler.transform(&c.features()))
            .collect();
        let xq = Matrix::from_vec(candidates.len(), 5, rows);
        let pc = gp_cost.predict(&xq).expect("predict cost");
        let pm = gp_mem.predict(&xq).expect("predict mem");

        // RGMA: filter unsafe candidates, goodness-draw among the rest.
        let safe: Vec<usize> = (0..candidates.len())
            .filter(|&i| pm.mean[i] < limit_log)
            .collect();
        if safe.is_empty() {
            println!("all remaining candidates predicted to exceed the limit; stopping");
            break;
        }
        let weights: Vec<f64> = safe
            .iter()
            .map(|&i| 10f64.powf(pc.std[i] - pc.mean[i]))
            .collect();
        let pick = safe[weighted_index(&mut rng, &weights).expect("draw")];
        let predicted_cost = 10f64.powf(pc.mean[pick]);
        let config = candidates.remove(pick);

        // Run the actual simulation.
        let outcome = run_simulation(&config, profile, &machine, 0).expect("simulation");
        total_cost += outcome.cost_node_hours;
        let safe_actual = outcome.memory_mb.value() < MEM_LIMIT_MB;
        println!(
            "{iter:>4} {:>2} {:>3} {:>9} {:>5.2} {:>6.2}  {:>10.4}  {:>11.4}  {:>7.3}  {}",
            config.p,
            config.mx,
            config.maxlevel,
            config.r0,
            config.rhoin,
            predicted_cost,
            outcome.cost_node_hours,
            outcome.memory_mb,
            if safe_actual { "yes" } else { "VIOLATION" }
        );

        // Retrain with the new measurement.
        xs.push(scaler.transform(&config.features()));
        log_costs.push(log10_response(outcome.cost_node_hours.value()));
        log_mems.push(log10_response(outcome.memory_mb.value()));
        train(&mut gp_cost, &xs, &log_costs);
        train(&mut gp_mem, &xs, &log_mems);
    }

    println!("\ntotal cost of the online campaign: {total_cost:.3} node-hours");
}
