//! Online active learning served through the session core: a
//! [`SessionStore`] owns the AL state, and this driver is a pure client —
//! it asks for a decision, launches the *live* AMR solver for the queried
//! configuration, and reports the measurement back. No GP, strategy, or
//! stopping logic lives out here; that is the point of the split.
//!
//! A second campaign on the same grid then warm-starts from the
//! hyperparameters the first campaign left in the store's LRU (the
//! paper's "use the old model's parameters as a starting point", applied
//! across sessions — the contrast the `warm_start_hit` perf scenario
//! measures).
//!
//! Run: `cargo run --release --example online_al`

// Examples abort on failure by design; the panic-site lints target
// library code (see alint L1).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use al_for_amr::al::{
    AlOptions, Decision, Observation, SessionConfig, SessionStore, StrategyKind, WarmKey,
};
use al_for_amr::amr::{run_simulation, MachineModel, SimulationConfig, SolverProfile};
use al_for_amr::dataset::transform::log10_response;
use al_for_amr::dataset::{FeatureScaler, SweepGrid};
use al_for_amr::linalg::Matrix;
use al_for_amr::units::{LogMegabytes, NodeHours};

/// Memory budget per process, MB: candidates predicted above it are
/// filtered out (RGMA's safety rule).
const MEM_LIMIT_MB: f64 = 3.0;

/// Iteration cap for the first campaign.
const ITERATIONS: usize = 12;

/// Configurations run up front to seed the models (the paper's "verify
/// correctness on a new platform" first runs).
const N_BOOTSTRAP: usize = 3;

/// The experimenter's side of the loop: the candidate grid, the live
/// solver, and the running bill. Everything the session core does *not*
/// own.
struct Lab {
    configs: Vec<SimulationConfig>,
    scaler: FeatureScaler,
    machine: MachineModel,
    profile: SolverProfile,
    total_cost: NodeHours,
}

impl Lab {
    fn new() -> Lab {
        // Candidate pool: the small sweep grid (32 configurations).
        let configs = SweepGrid::small().all_configs();
        let scaler = FeatureScaler::fit(&configs.iter().map(|c| c.features()).collect::<Vec<_>>());
        Lab {
            configs,
            scaler,
            machine: MachineModel::default(),
            profile: SolverProfile::smoke(),
            total_cost: NodeHours::new(0.0),
        }
    }

    /// Launch simulation `id` and package the measurement as the session
    /// observation. The session never sees the solver — only this.
    fn run_and_observe(&mut self, id: usize) -> Observation {
        let config = &self.configs[id];
        let outcome = run_simulation(config, self.profile, &self.machine, 0).expect("simulation");
        self.total_cost += outcome.cost_node_hours;
        Observation {
            dataset_index: id,
            cost: outcome.cost_node_hours,
            memory: outcome.memory_mb,
            features_scaled: self.scaler.transform(&config.features()).to_vec(),
            log_cost: log10_response(outcome.cost_node_hours.value()),
            log_mem: log10_response(outcome.memory_mb.value()),
        }
    }

    /// Build a session config: bootstrap runs become the initial labelled
    /// pool, the rest of the grid the candidate pool. `eval: None` is the
    /// serving deployment — no held-out split exists, records carry NaN
    /// RMSE.
    fn session_config(&mut self, opts: AlOptions) -> SessionConfig {
        let mut init_rows = Vec::new();
        let mut init_log_cost = Vec::new();
        let mut init_log_mem = Vec::new();
        for id in 0..N_BOOTSTRAP {
            let obs = self.run_and_observe(id);
            init_rows.extend_from_slice(&obs.features_scaled);
            init_log_cost.push(obs.log_cost);
            init_log_mem.push(obs.log_mem);
        }
        let candidate_ids: Vec<usize> = (N_BOOTSTRAP..self.configs.len()).collect();
        let cand_rows: Vec<f64> = candidate_ids
            .iter()
            .flat_map(|&i| self.scaler.transform(&self.configs[i].features()))
            .collect();
        SessionConfig {
            kind: StrategyKind::Rgma { base: 10.0 },
            opts,
            init_features: Matrix::from_vec(N_BOOTSTRAP, 5, init_rows),
            init_log_cost,
            init_log_mem,
            candidate_features: Matrix::from_vec(candidate_ids.len(), 5, cand_rows),
            candidate_ids,
            eval: None,
        }
    }

    /// Drive one session to completion through the store, printing each
    /// query's predictions next to the measured outcome.
    fn drive_session(&mut self, store: &SessionStore, id: u64, mut decision: Decision) {
        println!("iter  p  mx  maxlevel    r0  rhoin   pred-cost  actual-cost  mem(MB)  safe?");
        let mut iter = 0usize;
        while let Decision::Query(query) = decision {
            let obs = self.run_and_observe(query.dataset_index);
            let config = &self.configs[query.dataset_index];
            let safe_actual = obs.memory.value() < MEM_LIMIT_MB;
            println!(
                "{iter:>4} {:>2} {:>3} {:>9} {:>5.2} {:>6.2}  {:>10.4}  {:>11.4}  {:>7.3}  {}",
                config.p,
                config.mx,
                config.maxlevel,
                config.r0,
                config.rhoin,
                10f64.powf(query.pred_cost_log),
                obs.cost,
                obs.memory,
                if safe_actual { "yes" } else { "VIOLATION" }
            );
            decision = store.observe(id, &obs).expect("observe");
            iter += 1;
        }
        let trajectory = store.finish(id).expect("finish");
        println!(
            "session {id}: {} iterations, stopped: {:?}\n",
            trajectory.records.len(),
            trajectory.stop_reason
        );
    }
}

fn main() {
    let mut lab = Lab::new();
    let opts = AlOptions {
        max_iterations: Some(ITERATIONS),
        mem_limit_log: Some(LogMegabytes::new(MEM_LIMIT_MB.log10())),
        ..AlOptions::default()
    };
    println!("memory limit: {MEM_LIMIT_MB} MB per process\n");

    // The store owns the session; the key ties its fitted hyperparameters
    // to this (grid, kernel) pair in the warm-start LRU.
    let store = SessionStore::with_warm_capacity(1, 8);
    let key = WarmKey::new("sweep-small", "RBF");
    let config = lab.session_config(opts.clone());
    let decision = store
        .create(0, config, Some(key.clone()))
        .expect("create session");
    lab.drive_session(&store, 0, decision);

    // Second campaign, same grid: `create` finds the cached hyperparameters
    // under the key and opens with the cheap refit schedule instead of the
    // multi-start initial optimization.
    assert!(store.warm_keys().contains(&key), "first campaign cached");
    println!(
        "warm-started second campaign (cached keys: {:?})",
        store
            .warm_keys()
            .iter()
            .map(|k| k.grid.clone())
            .collect::<Vec<_>>()
    );
    let opts2 = AlOptions {
        max_iterations: Some(4),
        seed: 7,
        ..opts
    };
    let config = lab.session_config(opts2);
    let decision = store
        .create(1, config, Some(key))
        .expect("create warm session");
    lab.drive_session(&store, 1, decision);

    println!(
        "total cost of both campaigns: {:.3} node-hours",
        lab.total_cost
    );
}
