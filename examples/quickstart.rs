//! Quickstart: generate a small AMR performance dataset, run one
//! cost-aware active-learning trajectory, and watch the model error fall.
//!
//! Run: `cargo run --release --example quickstart`

// Examples abort on failure by design; the panic-site lints target
// library code (see alint L1).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use al_for_amr::al::{run_trajectory, AlOptions, StrategyKind};
use al_for_amr::amr::{MachineModel, SolverProfile};
use al_for_amr::dataset::{generate_parallel, Dataset, GenerateOptions, Partition, SweepGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build a small sweep (32 configurations + 8 repeats) and measure
    //    every job with the real AMR solver + machine model.
    println!("generating a small dataset (40 AMR simulations)...");
    let jobs = SweepGrid::small().draw_jobs(32, 8, 42);
    let samples = generate_parallel(
        &jobs,
        &GenerateOptions {
            profile: SolverProfile::smoke(),
            machine: MachineModel::default(),
            n_threads: 0,
        },
    )
    .expect("dataset generation");
    let dataset = Dataset::new(samples);
    println!(
        "dataset ready: {} samples, cost range [{:.4}, {:.4}] node-hours\n",
        dataset.len(),
        dataset
            .samples()
            .iter()
            .map(|s| s.cost_node_hours.value())
            .fold(f64::INFINITY, f64::min),
        dataset
            .samples()
            .iter()
            .map(|s| s.cost_node_hours.value())
            .fold(f64::NEG_INFINITY, f64::max),
    );

    // 2. Partition: 12 test samples, 4 initial, the rest form the Active
    //    pool AL selects from.
    let mut rng = StdRng::seed_from_u64(7);
    let partition = Partition::random(dataset.len(), 4, 12, &mut rng);

    // 3. Run cost-aware AL (RandGoodness: cheap samples are proportionally
    //    more likely, expensive ones still get explored).
    let trajectory = run_trajectory(
        &dataset,
        &partition,
        StrategyKind::RandGoodness { base: 10.0 },
        &AlOptions::default(),
    )
    .expect("AL trajectory");

    println!("iter  selected-cost  cumulative-cost  cost-RMSE");
    println!(
        "init  {:>13}  {:>15}  {:>9.4}",
        "-", "-", trajectory.initial_rmse_cost
    );
    for r in &trajectory.records {
        println!(
            "{:>4}  {:>13.4}  {:>15.4}  {:>9.4}",
            r.iteration, r.cost, r.cumulative_cost, r.rmse_cost
        );
    }
    println!(
        "\nstopped: {:?}; total cost {:.3} node-hours",
        trajectory.stop_reason,
        trajectory.total_cost()
    );
}
