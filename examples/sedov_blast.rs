//! The AMR solver on a different problem: a Sedov-type point blast. Shows
//! the library's problem-agnostic interface (`AmrSolver::with_problem`)
//! and how refinement chases an expanding circular front.
//!
//! Run: `cargo run --release --example sedov_blast`

// Examples abort on failure by design; the panic-site lints target
// library code (see alint L1).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use al_for_amr::amr::problem::SedovBlast;
use al_for_amr::amr::viz::{ascii_density, census_table};
use al_for_amr::amr::{AmrSolver, SolverProfile};

fn main() {
    let blast = SedovBlast::strong();
    let mut profile = SolverProfile::paper();
    profile.t_final = 0.012;

    println!(
        "Sedov blast: {}x ambient pressure in a disk of radius {}\n",
        blast.blast_pressure, blast.radius
    );
    let mut solver = AmrSolver::with_problem(&blast, 16, 5, profile);

    for frame in 0..=3 {
        let target = profile.t_final * frame as f64 / 3.0;
        while solver.time() < target {
            solver.step().expect("step");
        }
        println!(
            "--- t = {:.4} ({} leaves) ---",
            solver.time(),
            solver.forest().n_leaves()
        );
        println!("{}", ascii_density(solver.forest(), 48));
    }
    println!("{}", census_table(solver.forest()));
}
