// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Umbrella crate for the cost- and memory-aware active learning stack.
//!
//! Re-exports every layer so examples and downstream users can depend on a
//! single crate:
//!
//! - [`units`] — typed physical quantities shared by every layer
//! - [`linalg`] — dense linear algebra and statistics substrate
//! - [`gp`] — Gaussian process regression (kernels, fitting, prediction)
//! - [`amr`] — block-structured AMR Euler solver and machine model
//! - [`dataset`] — parameter sweep, dataset generation, transforms, partitions
//! - [`al`] — the active-learning procedure, selection strategies and metrics
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use al_amr_sim as amr;
pub use al_core as al;
pub use al_dataset as dataset;
pub use al_gp as gp;
pub use al_linalg as linalg;
pub use al_units as units;
