//! Integration tests spanning the whole stack: AMR solver → machine model
//! → dataset → GP models → active learning → metrics.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic and compare exact
// copied floats freely.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use al_for_amr::al::{run_batch, run_trajectory, AlOptions, BatchSpec, StrategyKind};
use al_for_amr::amr::{MachineModel, SolverProfile};
use al_for_amr::dataset::{generate_parallel, Dataset, GenerateOptions, Partition, SweepGrid};
use al_for_amr::gp::FitOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a small but real dataset by running the AMR solver.
fn small_real_dataset() -> Dataset {
    let jobs = SweepGrid::small().draw_jobs(30, 6, 7);
    let samples = generate_parallel(
        &jobs,
        &GenerateOptions {
            profile: SolverProfile::smoke(),
            machine: MachineModel::default(),
            n_threads: 0,
        },
    )
    .expect("dataset generation");
    Dataset::new(samples)
}

fn fast_opts() -> AlOptions {
    AlOptions {
        initial_fit: FitOptions {
            n_restarts: 1,
            max_iters: 30,
            ..FitOptions::default()
        },
        refit: FitOptions {
            n_restarts: 0,
            max_iters: 8,
            ..FitOptions::default()
        },
        optimize_every: 8,
        ..AlOptions::default()
    }
}

#[test]
fn offline_al_learns_real_amr_responses() {
    let dataset = small_real_dataset();
    assert_eq!(dataset.len(), 36);

    let mut rng = StdRng::seed_from_u64(3);
    let partition = Partition::random(dataset.len(), 4, 12, &mut rng);
    let t = run_trajectory(
        &dataset,
        &partition,
        StrategyKind::RandGoodness { base: 10.0 },
        &fast_opts(),
    )
    .expect("trajectory");

    assert_eq!(t.len(), partition.active.len(), "pool exhausted");
    let final_rmse = t.records.last().unwrap().rmse_cost;
    assert!(
        final_rmse < t.initial_rmse_cost,
        "AL must reduce cost RMSE: {} -> {}",
        t.initial_rmse_cost,
        final_rmse
    );
    // Costs recorded match dataset rows exactly.
    for r in &t.records {
        assert_eq!(r.cost, dataset.sample(r.dataset_index).cost_node_hours);
        assert_eq!(r.memory, dataset.sample(r.dataset_index).memory_mb);
    }
}

#[test]
fn rgma_beats_oblivious_strategies_on_regret() {
    let dataset = small_real_dataset();
    // Limit at the 70th percentile of the memory distribution so a
    // substantial fraction of the pool violates it (the tiny test dataset
    // has a short tail, unlike the paper's 600-sample one).
    let mems: Vec<f64> = dataset
        .samples()
        .iter()
        .map(|s| s.memory_mb.value())
        .collect();
    let lmem_log = al_for_amr::units::LogMegabytes::new(
        al_for_amr::linalg::stats::quantile(&mems, 0.7).log10(),
    );
    // Compare at an equal selection budget (paper Fig. 3 plots CR per
    // iteration). Without a cap every strategy exhausts the 20-sample pool
    // and final CR is order-independent — all strategies tie exactly.
    let opts = AlOptions {
        mem_limit_log: Some(lmem_log),
        max_iterations: Some(12),
        ..fast_opts()
    };
    let spec = BatchSpec {
        strategies: vec![StrategyKind::RandUniform, StrategyKind::Rgma { base: 10.0 }],
        // Eight initial samples give the memory GP enough signal for its
        // violation predictions to beat chance, and averaging eight
        // trajectories keeps the comparison out of seed-noise territory on
        // a dataset this small.
        n_init: 8,
        n_test: 10,
        n_trajectories: 8,
        base_seed: 17,
        n_threads: 1,
    };
    let results = run_batch(&dataset, &spec, &opts).expect("batch");
    let mean_regret = |ts: &Vec<al_for_amr::al::Trajectory>| {
        ts.iter().map(|t| t.total_regret().value()).sum::<f64>() / ts.len() as f64
    };
    let uniform_cr = mean_regret(&results[0].1);
    let rgma_cr = mean_regret(&results[1].1);
    assert!(
        uniform_cr > 0.0,
        "the memory-oblivious baseline must hit violations"
    );
    assert!(
        rgma_cr < uniform_cr,
        "RGMA mean CR {rgma_cr} must undercut RandUniform {uniform_cr}"
    );
}

#[test]
fn dataset_roundtrips_through_csv() {
    let dataset = small_real_dataset();
    let mut path = std::env::temp_dir();
    path.push(format!("al_e2e_roundtrip_{}.csv", std::process::id()));
    al_for_amr::dataset::io::write_csv(dataset.samples(), &path).expect("write");
    let back = al_for_amr::dataset::io::read_csv(&path).expect("read");
    assert_eq!(dataset.samples(), back.as_slice());
    std::fs::remove_file(&path).ok();
}

#[test]
fn repeated_measurements_have_consistent_features() {
    // The 6 repeats reference configs among the 30 unique ones and differ
    // only in their (noisy) responses.
    let dataset = small_real_dataset();
    let samples = dataset.samples();
    let uniques = &samples[..30];
    for repeat in &samples[30..] {
        let twin = uniques
            .iter()
            .find(|s| s.config == repeat.config)
            .expect("repeat must reference a unique config");
        assert_ne!(twin.cost_node_hours, repeat.cost_node_hours);
        let ratio = twin.cost_node_hours / repeat.cost_node_hours;
        assert!(ratio > 0.5 && ratio < 2.0, "noise is bounded: {ratio}");
    }
}

#[test]
fn cost_grows_with_maxlevel_in_real_data() {
    // The physical sanity check behind the whole study: deeper refinement
    // must be systematically more expensive.
    let dataset = small_real_dataset();
    let mean_cost = |ml: u8| {
        let v: Vec<f64> = dataset
            .samples()
            .iter()
            .filter(|s| s.config.maxlevel == ml)
            .map(|s| s.cost_node_hours.value())
            .collect();
        assert!(!v.is_empty());
        al_for_amr::linalg::stats::mean(&v)
    };
    // The smoke profile simulates a very short burst, compressing the
    // contrast; the full paper profile separates levels by ~4x.
    assert!(
        mean_cost(4) > 1.5 * mean_cost(3),
        "maxlevel 4 mean {} vs maxlevel 3 mean {}",
        mean_cost(4),
        mean_cost(3)
    );
}
