//! Integration test: online AL against the live solver (no precomputed
//! dataset), mirroring `examples/online_al.rs` with assertions.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic and compare exact
// copied floats freely.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use al_for_amr::amr::{run_simulation, MachineModel, SolverProfile};
use al_for_amr::dataset::transform::log10_response;
use al_for_amr::dataset::{FeatureScaler, SweepGrid};
use al_for_amr::gp::{FitOptions, GpModel, KernelKind};
use al_for_amr::linalg::Matrix;

#[test]
fn online_al_loop_runs_and_improves() {
    let grid = SweepGrid::small();
    let mut candidates = grid.all_configs();
    let scaler = FeatureScaler::fit(&candidates.iter().map(|c| c.features()).collect::<Vec<_>>());
    let machine = MachineModel::default();
    let profile = SolverProfile::smoke();

    // Bootstrap with two measurements.
    let mut xs: Vec<[f64; 5]> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut measured: Vec<(al_for_amr::amr::SimulationConfig, f64)> = Vec::new();
    for _ in 0..2 {
        let config = candidates.remove(0);
        let outcome = run_simulation(&config, profile, &machine, 0).expect("simulation");
        xs.push(scaler.transform(&config.features()));
        ys.push(log10_response(outcome.cost_node_hours.value()));
        measured.push((config, outcome.cost_node_hours.value()));
    }

    let fit = FitOptions {
        n_restarts: 1,
        max_iters: 25,
        ..FitOptions::default()
    };
    let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);

    // 6 online iterations of pure uncertainty sampling.
    for _ in 0..6 {
        let data: Vec<f64> = xs.iter().flatten().copied().collect();
        gp.fit_optimized(&Matrix::from_vec(xs.len(), 5, data), &ys, &fit)
            .expect("fit");

        let rows: Vec<f64> = candidates
            .iter()
            .flat_map(|c| scaler.transform(&c.features()))
            .collect();
        let pred = gp
            .predict(&Matrix::from_vec(candidates.len(), 5, rows))
            .expect("predict");
        let pick = al_for_amr::linalg::ops::argmax(&pred.std).expect("candidates remain");
        let config = candidates.remove(pick);
        let outcome = run_simulation(&config, profile, &machine, 0).expect("simulation");
        xs.push(scaler.transform(&config.features()));
        ys.push(log10_response(outcome.cost_node_hours.value()));
        measured.push((config, outcome.cost_node_hours.value()));
    }

    assert_eq!(measured.len(), 8);
    assert_eq!(candidates.len(), 32 - 8);

    // Final model: in-sample predictions must be within a factor ~2 of the
    // measured costs (log-space fit on 8 noisy points).
    let data: Vec<f64> = xs.iter().flatten().copied().collect();
    gp.fit_optimized(&Matrix::from_vec(xs.len(), 5, data), &ys, &fit)
        .expect("final fit");
    for (config, cost) in &measured {
        let (mu, _) = gp
            .predict_one(&scaler.transform(&config.features()))
            .expect("predict");
        let ratio = 10f64.powf(mu) / cost;
        assert!(
            ratio > 0.3 && ratio < 3.0,
            "in-sample prediction off by {ratio} for {config:?}"
        );
    }
}
