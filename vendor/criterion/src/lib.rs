//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple wall-clock harness: per sample the
//! closure is batched to ~`TARGET_BATCH_NS`, and the median over samples is
//! reported as ns/iter (plus throughput when declared).
//!
//! No plots, no statistics beyond median/min/max, no baseline comparison —
//! enough to detect order-of-magnitude regressions offline.

use std::fmt::Display;
use std::time::Instant;

/// Aim each measured batch at ~5 ms so timer resolution is negligible.
const TARGET_BATCH_NS: u128 = 5_000_000;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared per-iteration work, used to report a rate next to the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Measurement harness handed to each benchmark closure.
pub struct Bencher {
    /// Median ns per iteration of the most recent `iter` call.
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: calibrate a batch size, then time `sample_size`
    /// batches and keep the median/min/max ns-per-iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibration: grow the batch until it takes long enough to time.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos();
            if elapsed >= TARGET_BATCH_NS || batch >= 1 << 20 {
                break;
            }
            // Overshoot slightly so the measured batches stay >= target.
            batch = match (batch as u128 * TARGET_BATCH_NS * 11 / 10).checked_div(elapsed) {
                None => batch * 16,
                Some(grown) => grown.max(batch as u128 + 1).min(1 << 20) as u64,
            };
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
        self.min_ns = samples[0];
        self.max_ns = samples[samples.len() - 1];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed batches per benchmark (upstream default is 100;
    /// this harness defaults to 20 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            median_ns: 0.0,
            min_ns: 0.0,
            max_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut line = format!(
            "{}/{}  time: [{} .. {} .. {}]",
            self.name,
            id,
            fmt_ns(bencher.min_ns),
            fmt_ns(bencher.median_ns),
            fmt_ns(bencher.max_ns),
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n as f64, "elem"),
                Throughput::Bytes(n) => (n as f64, "B"),
            };
            if bencher.median_ns > 0.0 {
                let rate = count * 1e9 / bencher.median_ns;
                line.push_str(&format!("  thrpt: {rate:.3e} {unit}/s"));
            }
        }
        println!("{line}");
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.to_string();
        self.run_one(&name, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).run_one(&name, f);
        self
    }
}

/// Re-export for benches importing it from criterion rather than std.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut group = Criterion::default();
        let mut group = group.benchmark_group("smoke");
        group.sample_size(3);
        let mut captured = 0.0;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            captured = b.median_ns;
        });
        assert!(captured > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 400).to_string(), "fit/400");
        assert_eq!(BenchmarkId::from_parameter("rgma").to_string(), "rgma");
    }
}
