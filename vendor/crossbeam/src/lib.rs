//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` / `ScopedJoinHandle::join`
//! are used by this workspace; they are implemented directly on top of
//! `std::thread::scope` (stable since Rust 1.63), which provides the same
//! borrow-the-stack guarantee.
//!
//! Behavioural difference from upstream: a panicking worker propagates the
//! panic out of `scope` (std semantics) instead of surfacing it as an `Err`.
//! Every call site in this workspace treats a worker panic as fatal, so the
//! difference is unobservable.

pub mod thread {
    /// A scope handle mirroring `crossbeam::thread::Scope`.
    ///
    /// Upstream passes `&Scope` into every spawned closure (to allow nested
    /// spawns), which is why the workspace's closures take a `|_|` argument.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle mirroring `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the worker to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker that may borrow from the enclosing scope. The
        /// closure receives the scope itself (nested spawns), matching the
        /// upstream signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&this)))
        }
    }

    /// Create a scope for spawning borrowing threads. All workers are joined
    /// before this returns. Always `Ok` here (see module docs on panics).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        let result = super::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = &counter;
                scope.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn handles_return_values() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker ok"))
                .sum::<u64>()
        })
        .expect("scope ok");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            let counter = &counter;
            scope.spawn(move |inner| {
                inner.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("scope ok");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
