//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's poison-free API
//! (`lock()` returns the guard directly) backed by `std::sync`. Poisoning is
//! neutralised by unwrapping `PoisonError` into the inner guard — the same
//! observable behaviour as parking_lot, which has no poisoning at all.

use std::sync::PoisonError;

/// Poison-free mutex with the `parking_lot::Mutex` API subset the
/// workspace uses.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
