//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `boxed`, range and tuple strategies, [`collection::vec`],
//! [`array::uniform5`]-style fixed arrays, [`strategy::Just`],
//! `prop_oneof!`, and the `proptest!` test-harness macro.
//!
//! Differences from upstream, deliberate for an offline environment:
//! - **No shrinking.** A failing case reports its case number and seed so it
//!   can be replayed (`PROPTEST_SEED`), but is not minimised.
//! - `prop_assert!`/`prop_assert_eq!` panic instead of returning
//!   `TestCaseError` — equivalent observable behaviour under `cargo test`.
//! - Case count defaults to 64 (override with `PROPTEST_CASES`).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngExt, SampleRange};

    /// A generator of values of type `Value`.
    ///
    /// Object-safe: the only required method takes a concrete RNG, so
    /// strategies can be boxed for heterogeneous unions (`prop_oneof!`).
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate an intermediate value, then a dependent strategy from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Reject values failing `pred`. After 1000 straight rejections the
        /// runner panics (upstream aborts the test case similarly).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive values",
                self.whence
            );
        }
    }

    /// Type-erased strategy (`Strategy::boxed`, `prop_oneof!`).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs >= 1 alternative"
            );
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let k = rng.random_range(0..self.0.len());
            self.0[k].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample(rng)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Inclusive length bounds for [`vec()`](vec()): built from an exact `usize`, a
    /// half-open `Range`, or a `RangeInclusive`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "vec size range is empty");
            SizeRange { lo, hi }
        }
    }

    /// Strategy producing `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing `[S::Value; N]` from a single element strategy.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut StdRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// Generic fixed-size array strategy; `uniformN` helpers mirror upstream.
    pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
        UniformArray(element)
    }

    macro_rules! uniform_n {
        ($($fn_name:ident => $n:literal),*) => {$(
            pub fn $fn_name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_n!(
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8
    );
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok()?.parse().ok()
    }

    thread_local! {
        static REJECTED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// Called by `prop_assume!` before it early-returns out of the case body.
    pub fn note_rejection() {
        REJECTED.with(|r| r.set(true));
    }

    fn take_rejection() -> bool {
        REJECTED.with(|r| r.replace(false))
    }

    /// Execute `case` repeatedly with fresh deterministically seeded RNGs.
    ///
    /// The per-test seed stream is a hash of the test name (stable across
    /// runs) mixed with the case index; `PROPTEST_CASES` overrides the case
    /// count and `PROPTEST_SEED` replays a single reported case.
    pub fn run<F: Fn(&mut StdRng)>(name: &str, case: F) {
        if let Some(seed) = env_u64("PROPTEST_SEED") {
            let mut rng = StdRng::seed_from_u64(seed);
            case(&mut rng);
            return;
        }
        let cases = env_u64("PROPTEST_CASES").unwrap_or(64);
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        let base = hasher.finish();
        // Rejected cases (prop_assume!) are retried with fresh seeds, up to
        // an upstream-style global cap that keeps vacuous tests from passing.
        let max_rejects = 1024u64;
        let mut rejects = 0u64;
        let mut accepted = 0u64;
        let mut k = 0u64;
        while accepted < cases {
            let seed = base ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            k += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest '{name}': failed at case {accepted}/{cases}; \
                     replay with PROPTEST_SEED={seed}"
                );
                std::panic::resume_unwind(payload);
            }
            if take_rejection() {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{name}': {max_rejects} prop_assume! rejections \
                     — the strategy rarely satisfies the assumption"
                );
            } else {
                accepted += 1;
            }
        }
    }
}

/// Define property tests: `proptest! { #[test] fn name(x in strat, ..) { .. } }`.
///
/// Unlike upstream there is no shrinking; assertion macros panic directly.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            $crate::test_runner::run(stringify!($name), |__rng| {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, __rng);
                $body
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// `prop_assume!`: skip (not fail) the current case when `cond` is false.
///
/// Expands to an early `return` out of the case closure, so it is only valid
/// directly inside a `proptest!` body — same restriction as upstream.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            $crate::test_runner::note_rejection();
            return;
        }
    };
}

/// `prop_assert!`: assert within a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Upstream's `prelude::prop` module alias: `prop::collection::vec`,
    /// `prop::array::uniform5`, ...
    pub mod prop {
        pub use crate::{array, collection, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(-1.0f64..1.0, n)))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, k in 1usize..=4) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn flat_map_links_length(p in pair()) {
            prop_assert_eq!(p.0, p.1.len());
        }

        #[test]
        fn vec_and_array_sizes(
            v in crate::collection::vec(0u32..10, 2..6),
            a in prop::array::uniform5(0.0f64..1.0),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(a.len(), 5);
        }

        #[test]
        fn oneof_hits_every_alternative(picks in crate::collection::vec(
            prop_oneof![Just(0u8), Just(1u8), Just(2u8)], 64))
        {
            for p in &picks {
                prop_assert!(*p <= 2);
            }
        }

        #[test]
        fn filter_rejects(x in (0i32..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_applies(y in (1u32..10).prop_map(|x| x * 2)) {
            prop_assert!((2..20).contains(&y));
            prop_assert_eq!(y % 2, 0);
        }
    }
}
