//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the *exact* API surface it consumes: the object-safe
//! [`Rng`] core trait, the [`RngExt`] extension trait carrying the generic
//! `random`/`random_range` helpers, [`SeedableRng`], and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! The generator is *not* bit-compatible with upstream `rand`'s `StdRng`;
//! everything in this workspace that depends on randomness is seeded
//! explicitly and asserts distributional or structural properties, never
//! exact streams from the upstream generator.

/// Object-safe core RNG trait: a source of uniformly distributed bits.
///
/// Generic convenience methods live on [`RngExt`] so that `&mut dyn Rng`
/// remains a valid trait object (the selection strategies take one).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
pub trait StandardUniform: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a uniform integer in `[0, span)` without modulo bias (Lemire-style
/// rejection on the widening multiply).
#[inline]
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "uniform_u64_below: empty span");
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "random_range: empty range");
                let u = <$t as StandardUniform>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f64, f32);

/// Generic sampling helpers, blanket-implemented for every [`Rng`]
/// (including `dyn Rng`).
pub trait RngExt: Rng {
    /// Sample from the standard distribution of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic workspace RNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Small, fast, and passes BigCrush — a reasonable stand-in for
    /// upstream's ChaCha12-based `StdRng` in a simulation/test context
    /// (this is not a cryptographic generator).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's state must not be all zero; SplitMix64 only emits
            // four zeros for astronomically unlikely seeds, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let k = rng.random_range(0usize..5);
            seen[k] = true;
            let j = rng.random_range(0usize..=4);
            assert!(j <= 4);
            let x = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let v = dyn_rng.random_range(0usize..10);
        assert!(v < 10);
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
